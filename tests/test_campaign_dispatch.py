"""Dispatch-conformance suite for campaign execution backends.

Pins the PR's non-negotiable invariant: a campaign's manifest
fingerprint is byte-identical across ``local`` vs ``worker-pool``
dispatch, any worker count, any scheduling order, and warm-vs-cold
caches.  Also covers the wire protocol's failure modes (worker crash
mid-shard, duplicate completion, resume after interrupt) and the
incremental invalidation semantics of ``campaign diff`` /
``run --incremental`` — including a Hypothesis property: for a random
spec edit, the set of shards a re-run executes is exactly the set
whose cache key changed.

Fast tests drive :class:`WorkerPoolBackend` with in-process thread
workers and a cache-committing fake executor; the conformance matrix
(the acceptance criterion) runs real simulations through real
``repro campaign worker`` subprocesses.
"""

import json
import socket
import struct
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    DurationBook,
    LocalBackend,
    ShardCache,
    ShardSpec,
    WorkerPoolBackend,
    diff_spec,
    estimate_shard_cost,
    expand_spec,
    parse_backend_spec,
    resolve_backend,
    run_worker,
    schedule_shards,
    shard_cache_key,
)
from repro.campaign.dispatch import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.cli import main as cli_main

pytestmark = pytest.mark.dispatch


def smoke_spec(torrent_ids=(2, 3), **overrides):
    kwargs = {
        "name": "dispatch-test",
        "torrent_ids": tuple(torrent_ids),
        "scenarios": ("smoke",),
        "duration": 40.0,
    }
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


# ---------------------------------------------------------------------------
# Fake executors (module level: picklable into real worker processes).
# ---------------------------------------------------------------------------

def fake_commit(payload):
    """Deterministic stand-in for ``run_shard_payload``: same cache
    contract (resume serves the committed entry; a fresh run commits a
    trace + record atomically) without simulating anything."""
    shard = ShardSpec.from_payload(payload)
    key = shard_cache_key(shard)
    cache = (
        ShardCache(payload["cache_root"]) if payload.get("cache_root") else None
    )
    if cache is not None and payload.get("resume"):
        cached = cache.load(key)
        if cached is not None:
            record = dict(cached)
            record["cache_hit"] = True
            return record
    record = {
        "key": key,
        "shard_id": shard.shard_id,
        "status": "ok",
        "cache_hit": False,
        "wall_seconds": 0.01,
        "trace_fingerprint": "fp-%d" % shard.seed,
        "summary": {},
    }
    record.update(shard.as_payload())
    if cache is not None:
        tmp = cache.trace_tmp_path(key)
        tmp.write_text("trace fp-%d\n" % shard.seed)
        cache.store(key, record, trace_tmp=tmp)
    return record


def fake_commit_slow(payload):
    time.sleep(0.2)
    return fake_commit(payload)


def fake_fail(payload):
    raise ValueError("shard %d is cursed" % payload["torrent_id"])


# ---------------------------------------------------------------------------
# In-process worker-pool harness
# ---------------------------------------------------------------------------

class PoolHarness:
    """A runner wired to an injected ``WorkerPoolBackend(workers=0)``,
    run in a background thread so tests can play coordinator clients
    (fake crashing workers, protocol probes, in-process real workers)
    against its live socket."""

    def __init__(self, spec, cache_dir, retries=1):
        self.backend = WorkerPoolBackend(workers=0)
        self.runner = CampaignRunner(
            spec,
            cache_dir=str(cache_dir),
            retries=retries,
            backend="worker-pool:spawn=0",
            dispatch_backend=self.backend,
        )
        self.result = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.result = self.runner.run()

    def __enter__(self):
        self._thread.start()
        assert self.backend.started.wait(10.0), "coordinator never bound"
        return self

    def __exit__(self, *exc):
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive(), "campaign never finished"

    @property
    def endpoint(self):
        host, port = self.backend.address
        return "%s:%d" % (host, port)

    def connect(self):
        host, port = self.backend.address
        sock = socket.create_connection((host, port), timeout=10.0)
        send_frame(
            sock,
            {"type": "hello", "worker": "test-client",
             "protocol": PROTOCOL_VERSION},
        )
        return sock

    def start_worker(self, executor=fake_commit):
        thread = threading.Thread(
            target=run_worker,
            args=(self.endpoint,),
            kwargs={"executor": executor},
            daemon=True,
        )
        thread.start()
        return thread


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------

class TestFrameCodec:
    def pair(self):
        return socket.socketpair()

    def test_roundtrip(self):
        a, b = self.pair()
        message = {"type": "work", "shard_id": "t02-smoke-r0",
                   "payload": {"seed": 40, "nested": [1, 2, {"x": None}]}}
        send_frame(a, message)
        assert recv_frame(b) == message
        a.close(), b.close()

    def test_clean_eof_is_none(self):
        a, b = self.pair()
        a.close()
        assert recv_frame(b) is None
        b.close()

    def test_eof_mid_frame_raises(self):
        a, b = self.pair()
        a.sendall(struct.pack(">I", 100) + b"{\"type\"")
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    def test_oversized_frame_raises(self):
        a, b = self.pair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError):
            recv_frame(b)
        a.close(), b.close()

    def test_untyped_and_undecodable_frames_raise(self):
        for body in (b"[1,2,3]", b"\xff\xfe garbage", b"{\"no\": \"type\"}"):
            a, b = self.pair()
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(FrameError):
                recv_frame(b)
            a.close(), b.close()


# ---------------------------------------------------------------------------
# Cache-aware scheduling
# ---------------------------------------------------------------------------

class TestScheduling:
    def test_cold_estimate_scales_with_size_and_duration(self):
        small = expand_spec(smoke_spec((2,)))[0]
        # Torrent 13 is a bigger Table-I entry than torrent 2.
        big = expand_spec(smoke_spec((13,)))[0]
        assert estimate_shard_cost(big) > estimate_shard_cost(small)
        longer = expand_spec(smoke_spec((2,), duration=400.0))[0]
        assert estimate_shard_cost(longer) > estimate_shard_cost(small)

    def test_longest_first_with_stable_tiebreak(self):
        shards = expand_spec(smoke_spec((2, 3, 13)))
        durations = DurationBook()
        durations.record("t03-smoke-r0", 50.0)
        durations.record("t02-smoke-r0", 10.0)
        ordered = [s.shard_id for s in schedule_shards(shards, durations)]
        # Recorded 50s beats recorded 10s; the cold t13 estimate is
        # sub-second, so it schedules last.
        assert ordered == ["t03-smoke-r0", "t02-smoke-r0", "t13-smoke-r0"]

    def test_equal_cost_orders_by_shard_id(self):
        shards = expand_spec(smoke_spec((2,), replicates=3))
        durations = DurationBook()
        for shard in shards:
            durations.record(shard.shard_id, 5.0)
        ordered = [s.shard_id for s in schedule_shards(shards, durations)]
        assert ordered == sorted(ordered)

    def test_scheduling_never_changes_results(self, tmp_path):
        # Same spec, one cold cache vs one with adversarial recorded
        # durations (reversed order): identical fingerprints.
        spec = smoke_spec((2, 3, 13))
        a = CampaignRunner(spec, cache_dir=str(tmp_path / "a"),
                           executor=fake_commit).run()
        durations = DurationBook(tmp_path / "b")
        durations.record("t02-smoke-r0", 1000.0)
        durations.record("t13-smoke-r0", 0.001)
        durations.save()
        b = CampaignRunner(spec, cache_dir=str(tmp_path / "b"),
                           executor=fake_commit).run()
        assert a.fingerprint == b.fingerprint

    def test_duration_book_roundtrip_and_corruption(self, tmp_path):
        book = DurationBook(tmp_path)
        book.record("t02-smoke-r0", 1.23456)
        book.save()
        reloaded = DurationBook(tmp_path)
        assert reloaded.get("t02-smoke-r0") == 1.2346
        (tmp_path / "durations.json").write_text("{not json")
        assert len(DurationBook(tmp_path)) == 0

    def test_runner_records_durations(self, tmp_path):
        CampaignRunner(
            smoke_spec((2,)), cache_dir=str(tmp_path), executor=fake_commit
        ).run()
        assert DurationBook(tmp_path).get("t02-smoke-r0") == 0.01


# ---------------------------------------------------------------------------
# Backend specs
# ---------------------------------------------------------------------------

class TestBackendSpec:
    def test_parse(self):
        assert parse_backend_spec("local") == ("local", {})
        assert parse_backend_spec("worker-pool") == ("worker-pool", {})
        assert parse_backend_spec("worker-pool:spawn=3, port=7000") == (
            "worker-pool", {"spawn": "3", "port": "7000"}
        )

    def test_parse_rejects_unknown_and_malformed(self):
        with pytest.raises(ValueError):
            parse_backend_spec("slurm")
        with pytest.raises(ValueError):
            parse_backend_spec("worker-pool:spawn")

    def test_resolve(self):
        local = resolve_backend("local", workers=4)
        assert isinstance(local, LocalBackend) and local.workers == 4
        pool = resolve_backend("worker-pool:spawn=2,port=7171", workers=8)
        assert isinstance(pool, WorkerPoolBackend)
        assert pool.workers == 2 and pool.port == 7171
        assert resolve_backend("worker-pool", workers=3).workers == 3


# ---------------------------------------------------------------------------
# Worker-pool failure semantics (in-process, fast)
# ---------------------------------------------------------------------------

class TestWorkerPoolSemantics:
    def test_worker_crash_mid_shard_is_retried(self, tmp_path):
        spec = smoke_spec((2,))
        with PoolHarness(spec, tmp_path) as harness:
            crasher = harness.connect()
            work = recv_frame(crasher)
            assert work["type"] == "work"
            crasher.close()  # dies holding the lease
            harness.start_worker()
        result = harness.result
        entry = result.manifest["shards"][0]
        assert entry["status"] == "ok"
        # One attempt charged to the crash, one to the completion.
        assert entry["attempts"] == 2
        assert result.counts["ok"] == 1

    def test_crash_exhausts_retries_to_failed(self, tmp_path):
        spec = smoke_spec((2,))
        with PoolHarness(spec, tmp_path, retries=0) as harness:
            crasher = harness.connect()
            assert recv_frame(crasher)["type"] == "work"
            crasher.close()
        entry = harness.result.manifest["shards"][0]
        assert entry["status"] == "failed"
        assert "WorkerCrashed" in entry["errors"][0]

    def test_remote_error_consumes_retries(self, tmp_path):
        spec = smoke_spec((2,))
        with PoolHarness(spec, tmp_path, retries=1) as harness:
            harness.start_worker(executor=fake_fail)
        entry = harness.result.manifest["shards"][0]
        assert entry["status"] == "failed"
        assert entry["attempts"] == 2
        assert all("RemoteShardError" in err for err in entry["errors"])

    def test_remote_timeout_recorded_not_retried(self, tmp_path):
        # A remote ShardTimeout is deterministic: one attempt, status
        # "timeout", exactly like the local pool's semantics.
        spec = smoke_spec((2,))
        with PoolHarness(spec, tmp_path, retries=5) as harness:
            client = harness.connect()
            work = recv_frame(client)
            send_frame(client, {
                "type": "error", "shard_id": work["shard_id"],
                "kind": "ShardTimeout", "message": "overran budget",
            })
            recv_frame(client)  # shutdown
            client.close()
        entry = harness.result.manifest["shards"][0]
        assert entry["status"] == "timeout"
        assert entry["attempts"] == 1

    def test_stale_duplicate_result_frame_discarded(self, tmp_path):
        # A worker re-sending an already-delivered result must not be
        # read as the answer to its next lease.
        spec = smoke_spec((2, 3))
        with PoolHarness(spec, tmp_path) as harness:
            client = harness.connect()
            first = recv_frame(client)
            record_a = fake_commit(dict(first["payload"]))
            send_frame(client, {"type": "result",
                                "shard_id": first["shard_id"],
                                "record": record_a})
            second = recv_frame(client)
            assert second["type"] == "work"
            assert second["shard_id"] != first["shard_id"]
            # Stale duplicate of the first result, then the real one.
            send_frame(client, {"type": "result",
                                "shard_id": first["shard_id"],
                                "record": record_a})
            record_b = fake_commit(dict(second["payload"]))
            send_frame(client, {"type": "result",
                                "shard_id": second["shard_id"],
                                "record": record_b})
            assert recv_frame(client)["type"] == "shutdown"
            client.close()
        assert harness.result.counts["ok"] == 2
        assert harness.backend.duplicate_results == 1
        for entry in harness.result.manifest["shards"]:
            assert entry["attempts"] == 1

    def test_duplicate_completion_through_cache_is_idempotent(self, tmp_path):
        # Worker 1 executes + commits, then dies before reporting; the
        # requeued shard reaches worker 2 with resume=True and is served
        # from the single committed entry — one commit, same bytes.
        spec = smoke_spec((2,))
        with PoolHarness(spec, tmp_path) as harness:
            client = harness.connect()
            work = recv_frame(client)
            assert work["payload"]["resume"] is True
            fake_commit(dict(work["payload"]))  # commit, then "die"
            client.close()
            harness.start_worker()
        result = harness.result
        entry = result.manifest["shards"][0]
        assert entry["status"] == "ok"
        key = entry["key"]
        cache = ShardCache(tmp_path)
        assert cache.load(key)["trace_fingerprint"] == entry["trace_fingerprint"]
        # Exactly one committed trace, no tmp debris.
        assert len(list(Path(tmp_path).glob("*.trace.jsonl"))) == 1
        assert list(Path(tmp_path).glob("*.tmp")) == []
        # The crashed-after-commit run fingerprints identically to a
        # clean local run of the same spec.
        clean = CampaignRunner(
            spec, cache_dir=str(tmp_path / "clean"), executor=fake_commit
        ).run()
        assert result.fingerprint == clean.fingerprint

    def test_racing_commits_are_byte_identical(self, tmp_path):
        # Two real processes commit the same shard concurrently into one
        # cache: atomic rename, last writer wins, same bytes either way.
        shard = expand_spec(smoke_spec((2,)))[0]
        payload = shard.as_payload()
        payload["cache_root"] = str(tmp_path)
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(fake_commit_slow, dict(payload)) for _ in range(2)
            ]
            records = [future.result() for future in futures]
        assert records[0] == records[1]
        cache = ShardCache(tmp_path)
        key = shard_cache_key(shard)
        stored = cache.load(key)
        assert stored is not None
        assert stored["trace_fingerprint"] == records[0]["trace_fingerprint"]
        assert list(Path(tmp_path).glob("*.tmp")) == []

    def test_resume_after_interrupt_through_worker_pool(self, tmp_path):
        # First run "interrupts" after one shard (filter); the full run
        # through the worker pool executes only the missing shard and
        # lands on the clean-run fingerprint.
        spec = smoke_spec((2, 3))
        CampaignRunner(
            spec, cache_dir=str(tmp_path), executor=fake_commit
        ).run(shard_filter="t02-*")
        with PoolHarness(spec, tmp_path) as harness:
            harness.start_worker()
        result = harness.result
        assert result.counts["cache_hits"] == 1
        assert result.counts["executed"] == 1
        clean = CampaignRunner(
            spec, cache_dir=str(tmp_path / "clean"), executor=fake_commit
        ).run()
        assert result.fingerprint == clean.fingerprint

    def test_failed_shard_retries_on_next_run(self, tmp_path):
        # A shard that failed (no cache entry) re-executes on the next
        # worker-pool run and converges to the clean fingerprint.
        spec = smoke_spec((2, 3))
        with PoolHarness(spec, tmp_path, retries=0) as harness:
            client = harness.connect()
            work = recv_frame(client)
            send_frame(client, {
                "type": "result", "shard_id": work["shard_id"],
                "record": fake_commit(dict(work["payload"])),
            })
            # Crash while holding the second shard: retries=0 fails it.
            assert recv_frame(client)["type"] == "work"
            client.close()
        assert harness.result.counts["failed"] == 1
        with PoolHarness(spec, tmp_path) as rerun:
            rerun.start_worker()
        assert rerun.result.counts["failed"] == 0
        assert rerun.result.counts["cache_hits"] == 1
        clean = CampaignRunner(
            spec, cache_dir=str(tmp_path / "clean"), executor=fake_commit
        ).run()
        assert rerun.result.fingerprint == clean.fingerprint


# ---------------------------------------------------------------------------
# Conformance matrix (the acceptance criterion): real sims, real workers
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def conformance_runs(tmp_path_factory):
    """Run the same tiny campaign through every backend configuration."""
    spec = smoke_spec((2, 3))
    root = tmp_path_factory.mktemp("conformance")
    runs = {}
    for label, kwargs in (
        ("local-w1", {"workers": 1}),
        ("local-w2", {"workers": 2}),
        ("pool-w1", {"backend": "worker-pool:spawn=1"}),
        ("pool-w3", {"backend": "worker-pool:spawn=3"}),
    ):
        runs[label] = CampaignRunner(
            spec, cache_dir=str(root / label), **kwargs
        ).run()
    runs["warm-rerun"] = CampaignRunner(
        spec, cache_dir=str(root / "pool-w3"),
        backend="worker-pool:spawn=1",
    ).run()
    return runs


class TestConformance:
    def test_all_backends_fingerprint_identically(self, conformance_runs):
        fingerprints = {
            label: run.fingerprint for label, run in conformance_runs.items()
        }
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_every_run_completed_cleanly(self, conformance_runs):
        for label, run in conformance_runs.items():
            assert run.counts["failed"] == 0, label
            assert run.counts["timeout"] == 0, label
            assert run.counts["ok"] == run.counts["shards"], label

    def test_warm_rerun_is_all_cache_hits(self, conformance_runs):
        warm = conformance_runs["warm-rerun"]
        assert warm.counts["cache_hits"] == warm.counts["shards"]
        assert warm.counts["executed"] == 0

    def test_manifest_records_backend(self, conformance_runs):
        assert conformance_runs["local-w1"].manifest["backend"] == "local"
        assert (
            conformance_runs["pool-w1"].manifest["backend"]
            == "worker-pool:spawn=1"
        )


# ---------------------------------------------------------------------------
# Incremental invalidation
# ---------------------------------------------------------------------------

def apply_edit(spec, edit):
    kind, value = edit
    if kind == "duration":
        return CampaignSpec(**{**vars(spec).copy(), "duration": value})
    if kind == "seed":
        return CampaignSpec(**{**vars(spec).copy(), "campaign_seed": value})
    if kind == "torrents":
        return CampaignSpec(**{**vars(spec).copy(), "torrent_ids": value})
    if kind == "replicates":
        return CampaignSpec(**{**vars(spec).copy(), "replicates": value})
    if kind == "selector":
        return CampaignSpec(**{**vars(spec).copy(), "selector": value})
    raise AssertionError(kind)


spec_edits = st.one_of(
    st.tuples(st.just("duration"), st.sampled_from([40.0, 60.0, 100.0])),
    st.tuples(st.just("seed"), st.integers(min_value=3, max_value=6)),
    st.tuples(
        st.just("torrents"),
        st.sampled_from([(2,), (3,), (2, 3), (2, 3, 13)]),
    ),
    st.tuples(st.just("replicates"), st.integers(min_value=1, max_value=2)),
    st.tuples(st.just("selector"), st.sampled_from([None, "random"])),
)


class TestIncrementalInvalidation:
    def test_fresh_cache_reports_everything_new(self, tmp_path):
        report = diff_spec(smoke_spec((2, 3)), tmp_path)
        assert [d.state for d in report.deltas] == ["new", "new"]
        assert len(report.invalidated) == 2

    def test_field_level_reasons(self, tmp_path):
        spec = smoke_spec((2,))
        CampaignRunner(spec, cache_dir=str(tmp_path),
                       executor=fake_commit).run()
        edited = apply_edit(spec, ("duration", 120.0))
        report = diff_spec(edited, tmp_path)
        (delta,) = report.deltas
        assert delta.state == "changed"
        assert delta.changed_fields == [("duration", 40.0, 120.0)]
        assert "duration" in delta.reason

    def test_eviction_detected(self, tmp_path):
        spec = smoke_spec((2,))
        result = CampaignRunner(spec, cache_dir=str(tmp_path),
                                executor=fake_commit).run()
        ShardCache(tmp_path).remove(result.manifest["shards"][0]["key"])
        report = diff_spec(spec, tmp_path)
        assert [d.state for d in report.deltas] == ["evicted"]

    def test_removed_shards_surfaced(self, tmp_path):
        CampaignRunner(smoke_spec((2, 3)), cache_dir=str(tmp_path),
                       executor=fake_commit).run()
        report = diff_spec(smoke_spec((2,)), tmp_path)
        assert report.removed == ["t03-smoke-r0"]
        assert len(report.invalidated) == 0

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(edit=spec_edits, second_edit=spec_edits)
    def test_rerun_set_equals_key_changed_set(self, edit, second_edit):
        # For a random pair of spec edits applied on top of a cached
        # base run: the shards a re-run executes are exactly the shards
        # whose cache key changed, and an incremental re-run right after
        # a diff is 100% cache hits.
        base = smoke_spec((2, 3))
        with tempfile.TemporaryDirectory() as cache_dir:
            CampaignRunner(base, cache_dir=cache_dir,
                           executor=fake_commit).run()
            edited = apply_edit(apply_edit(base, edit), second_edit)

            cache = ShardCache(cache_dir)
            key_changed = {
                shard.shard_id
                for shard in expand_spec(edited)
                if cache.load(shard_cache_key(shard)) is None
            }
            report = diff_spec(edited, cache_dir)
            assert {d.shard_id for d in report.invalidated} == key_changed

            result = CampaignRunner(edited, cache_dir=cache_dir,
                                    executor=fake_commit).run()
            executed = {
                entry["shard_id"]
                for entry in result.manifest["shards"]
                if not entry["cache_hit"]
            }
            assert executed == key_changed

            # After the run, the spec is fully cached: diff reports no
            # invalidation and a further re-run is 100% cache hits.
            assert diff_spec(edited, cache_dir).invalidated == []
            rerun = CampaignRunner(edited, cache_dir=cache_dir,
                                   executor=fake_commit).run()
            assert rerun.counts["cache_hits"] == rerun.counts["shards"]
            assert rerun.fingerprint == result.fingerprint


class TestIncrementalCLI:
    def run_cli(self, *argv):
        return cli_main(list(argv))

    def test_diff_and_incremental_run_end_to_end(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = ["--torrents", "2", "--scenario", "smoke",
                "--duration", "40", "--cache-dir", cache, "--name", "cli"]
        assert self.run_cli("campaign", "run", *base) == 0
        capsys.readouterr()

        # Fully cached: diff exits 0.
        assert self.run_cli("campaign", "diff", *base) == 0
        out = capsys.readouterr().out
        assert "1 cached, 0 invalidated" in out

        # Edited spec: diff exits 1 and names the moved field.
        edited = base.copy()
        edited[edited.index("40")] = "60"
        assert self.run_cli("campaign", "diff", *edited) == 1
        out = capsys.readouterr().out
        assert "duration: 40.0 -> 60.0" in out

        # Incremental run executes exactly the invalidated shard...
        assert self.run_cli(
            "campaign", "run", "--incremental", *edited
        ) == 0
        out = capsys.readouterr().out
        assert "executed=1" in out
        # ...after which the diff is clean and a re-run is all hits.
        assert self.run_cli("campaign", "diff", *edited) == 0
        capsys.readouterr()
        assert self.run_cli(
            "campaign", "run", "--incremental", *edited
        ) == 0
        out = capsys.readouterr().out
        assert "cache_hits=1 executed=0" in out

    def test_diff_json(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert self.run_cli(
            "campaign", "diff", "--torrents", "2,3", "--scenario", "smoke",
            "--duration", "40", "--cache-dir", cache, "--json",
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["new"] == 2
        assert {s["state"] for s in payload["shards"]} == {"new"}
