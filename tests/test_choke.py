"""Tests for the four choke (peer-selection) strategies."""

from random import Random

import pytest

from repro.core.choke import (
    ChokeCandidate,
    LeecherChoker,
    OldSeedChoker,
    SeedChoker,
    TitForTatChoker,
)
from repro.core.free_rider import FreeRiderChoker


def candidate(key, interested=True, choked=True, down=0.0, up=0.0,
              uploaded=0.0, downloaded=0.0, last_unchoked=None):
    return ChokeCandidate(
        key=key,
        interested=interested,
        choked=choked,
        download_rate=down,
        upload_rate=up,
        uploaded_to=uploaded,
        downloaded_from=downloaded,
        last_unchoked=last_unchoked,
    )


class TestLeecherChoker:
    def test_unchokes_three_fastest(self):
        choker = LeecherChoker()
        candidates = [
            candidate("a", down=100.0),
            candidate("b", down=300.0),
            candidate("c", down=200.0),
            candidate("d", down=50.0),
            candidate("e", down=10.0),
        ]
        decision = choker.round(candidates, now=10.0, rng=Random(1))
        regular = [k for k in decision.unchoked if k != decision.optimistic]
        assert set(regular) == {"a", "b", "c"}

    def test_at_most_four_unchoked(self):
        choker = LeecherChoker()
        candidates = [candidate(str(i), down=float(i)) for i in range(20)]
        decision = choker.round(candidates, now=10.0, rng=Random(1))
        assert len(decision.unchoked) == 4

    def test_optimistic_is_not_a_regular(self):
        choker = LeecherChoker()
        candidates = [candidate(str(i), down=float(10 - i)) for i in range(10)]
        decision = choker.round(candidates, now=10.0, rng=Random(1))
        regular = [k for k in decision.unchoked if k != decision.optimistic]
        assert decision.optimistic not in regular

    def test_not_interested_never_unchoked(self):
        choker = LeecherChoker()
        candidates = [
            candidate("a", interested=False, down=1000.0),
            candidate("b", down=1.0),
        ]
        decision = choker.round(candidates, now=10.0, rng=Random(1))
        assert "a" not in decision.unchoked
        assert "b" in decision.unchoked

    def test_optimistic_rotates_every_third_round(self):
        choker = LeecherChoker(optimistic_rounds=3)
        candidates = [candidate(str(i), down=float(100 - i)) for i in range(10)]
        rng = Random(5)
        holders = []
        for round_index in range(9):
            decision = choker.round(candidates, now=10.0 * round_index, rng=rng)
            holders.append(decision.optimistic)
        # Within each 3-round window the optimistic peer is stable.
        assert holders[0] == holders[1] == holders[2]
        assert holders[3] == holders[4] == holders[5]

    def test_optimistic_replaced_when_it_leaves(self):
        choker = LeecherChoker()
        candidates = [candidate(str(i), down=float(100 - i)) for i in range(6)]
        decision = choker.round(candidates, now=0.0, rng=Random(3))
        holder = decision.optimistic
        remaining = [c for c in candidates if c.key != holder]
        decision2 = choker.round(remaining, now=10.0, rng=Random(3))
        assert decision2.optimistic != holder

    def test_empty_candidates(self):
        decision = LeecherChoker().round([], now=0.0, rng=Random(1))
        assert decision.unchoked == []
        assert decision.optimistic is None

    def test_fewer_candidates_than_slots(self):
        choker = LeecherChoker()
        decision = choker.round([candidate("a")], now=0.0, rng=Random(1))
        assert decision.unchoked == ["a"]

    def test_validation(self):
        with pytest.raises(ValueError):
            LeecherChoker(regular_slots=0)
        with pytest.raises(ValueError):
            LeecherChoker(optimistic_rounds=0)

    def test_reset(self):
        choker = LeecherChoker()
        choker.round([candidate("a")], now=0.0, rng=Random(1))
        choker.reset()
        assert choker._round_index == 0


class TestSeedChoker:
    def test_at_most_four_unchoked(self):
        choker = SeedChoker()
        candidates = [candidate(str(i)) for i in range(20)]
        for round_index in range(6):
            decision = choker.round(candidates, now=10.0 * round_index, rng=Random(1))
            assert len(decision.unchoked) <= 4

    def test_sru_rotates_service_over_all_peers(self):
        """Over many rounds every interested peer gets unchoked: the new
        seed algorithm gives the same service time to each leecher."""
        choker = SeedChoker()
        keys = [str(i) for i in range(12)]
        unchoked_now = set()
        rng = Random(7)
        served = set()
        for round_index in range(60):
            candidates = [
                candidate(k, choked=k not in unchoked_now) for k in keys
            ]
            decision = choker.round(candidates, now=10.0 * round_index, rng=rng)
            unchoked_now = set(decision.unchoked)
            served |= unchoked_now
        assert served == set(keys)

    def test_rotation_evicts_oldest(self):
        """Each SRU peer takes a slot off the oldest SKU peer."""
        choker = SeedChoker()
        keys = [str(i) for i in range(8)]
        unchoked_now = set()
        rng = Random(3)
        history = []
        for round_index in range(30):
            candidates = [
                candidate(k, choked=k not in unchoked_now) for k in keys
            ]
            decision = choker.round(candidates, now=10.0 * round_index, rng=rng)
            unchoked_now = set(decision.unchoked)
            history.append(unchoked_now)
        # The unchoked set keeps changing (round robin), it never freezes.
        assert len({frozenset(s) for s in history[5:]}) > 1

    def test_ignores_rates_entirely(self):
        """A fast free rider cannot hold a slot: rates play no role."""
        choker = SeedChoker()
        rng = Random(11)
        unchoked_now = set()
        fast_rider_rounds = 0
        for round_index in range(60):
            candidates = [
                candidate("fast", choked="fast" not in unchoked_now, down=1e9, up=1e9)
            ] + [
                candidate("slow%d" % i, choked=("slow%d" % i) not in unchoked_now)
                for i in range(10)
            ]
            decision = choker.round(candidates, now=10.0 * round_index, rng=rng)
            unchoked_now = set(decision.unchoked)
            if "fast" in unchoked_now:
                fast_rider_rounds += 1
        # It gets its fair rotation share, not a monopoly.
        assert fast_rider_rounds < 40

    def test_validation(self):
        with pytest.raises(ValueError):
            SeedChoker(slots=1)

    def test_sru_round_keeps_full_slots_when_no_choked_interested(self):
        """Regression: in an SRU round with nobody to promote, the seed
        must keep all ``slots`` ranked peers instead of dropping one
        upload slot for the round."""
        choker = SeedChoker()
        rng = Random(1)
        # Five interested peers, all already unchoked: nobody to promote.
        candidates = [
            candidate(str(i), choked=False, last_unchoked=float(i))
            for i in range(5)
        ]
        for round_index in range(3):  # covers both SRU rounds and the SKU round
            decision = choker.round(candidates, now=100.0 + round_index, rng=rng)
            assert len(decision.unchoked) == 4  # full slots, no idle slot
            assert decision.optimistic is None

    def test_sru_round_empty_pool_single_unchoked_peer(self):
        """Same regression with fewer peers than slots: all are kept."""
        choker = SeedChoker()
        rng = Random(5)
        decision = choker.round([candidate("only")], now=0.0, rng=rng)
        assert decision.unchoked == ["only"]
        decision = choker.round(
            [candidate("only", choked=False)], now=10.0, rng=rng
        )
        assert decision.unchoked == ["only"]


class TestOldSeedChoker:
    def test_favours_fastest_downloaders(self):
        """The old algorithm orders by upload rate from the local peer:
        a fast peer keeps its slot forever."""
        choker = OldSeedChoker()
        rng = Random(2)
        fast_rounds = 0
        for round_index in range(30):
            candidates = [candidate("fast", choked=False, up=1e6)] + [
                candidate("slow%d" % i, up=10.0) for i in range(10)
            ]
            decision = choker.round(candidates, now=10.0 * round_index, rng=rng)
            if "fast" in decision.unchoked:
                fast_rounds += 1
        assert fast_rounds == 30  # monopoly — the unfairness of §IV-B.3


class TestTitForTat:
    def test_blocks_peers_over_deficit(self):
        choker = TitForTatChoker(deficit_threshold=1000.0)
        candidates = [
            candidate("debtor", uploaded=5000.0, downloaded=100.0, down=100.0),
            candidate("fair", uploaded=500.0, downloaded=400.0, down=50.0),
        ]
        decision = choker.round(candidates, now=0.0, rng=Random(1))
        assert "debtor" not in decision.unchoked
        assert "fair" in decision.unchoked

    def test_bootstrap_allowance(self):
        choker = TitForTatChoker(deficit_threshold=1000.0)
        candidates = [candidate("new", uploaded=0.0, downloaded=0.0)]
        decision = choker.round(candidates, now=0.0, rng=Random(1))
        assert "new" in decision.unchoked

    def test_free_rider_starves_after_allowance(self):
        choker = TitForTatChoker(deficit_threshold=1000.0)
        candidates = [candidate("rider", uploaded=1001.0, downloaded=0.0)]
        decision = choker.round(candidates, now=0.0, rng=Random(1))
        assert decision.unchoked == []

    def test_slot_cap(self):
        choker = TitForTatChoker(deficit_threshold=1e9, slots=4)
        candidates = [candidate(str(i), down=float(i)) for i in range(10)]
        decision = choker.round(candidates, now=0.0, rng=Random(1))
        assert len(decision.unchoked) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TitForTatChoker(deficit_threshold=-1.0)


class TestFreeRider:
    def test_never_unchokes(self):
        choker = FreeRiderChoker()
        candidates = [candidate(str(i), down=1e6) for i in range(5)]
        decision = choker.round(candidates, now=0.0, rng=Random(1))
        assert decision.unchoked == []


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def run():
            choker = LeecherChoker()
            rng = Random(9)
            out = []
            for round_index in range(10):
                candidates = [
                    candidate(str(i), down=float(i % 4)) for i in range(12)
                ]
                decision = choker.round(candidates, now=10.0 * round_index, rng=rng)
                out.append((tuple(decision.unchoked), decision.optimistic))
            return out

        assert run() == run()
