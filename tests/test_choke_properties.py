"""Property-based invariants of the choke strategies."""

from random import Random

from hypothesis import given, settings, strategies as st

from repro.core.choke import (
    ChokeCandidate,
    LeecherChoker,
    OldSeedChoker,
    SeedChoker,
    TitForTatChoker,
)


@st.composite
def candidates(draw):
    n = draw(st.integers(0, 25))
    out = []
    for index in range(n):
        out.append(
            ChokeCandidate(
                key="p%d" % index,
                interested=draw(st.booleans()),
                choked=draw(st.booleans()),
                download_rate=draw(st.floats(0, 1e6)),
                upload_rate=draw(st.floats(0, 1e6)),
                uploaded_to=draw(st.floats(0, 1e9)),
                downloaded_from=draw(st.floats(0, 1e9)),
                last_unchoked=draw(st.none() | st.floats(0, 1e4)),
            )
        )
    return out


CHOKERS = [
    lambda: LeecherChoker(),
    lambda: SeedChoker(),
    lambda: OldSeedChoker(),
    lambda: TitForTatChoker(deficit_threshold=1e6),
]


@settings(max_examples=60, deadline=None)
@given(candidates(), st.integers(0, 2**31), st.integers(1, 6))
def test_property_unchoked_are_interested_candidates(cands, seed, rounds):
    """Every choker only unchokes interested peers, never invents keys,
    and never exceeds 4 slots, across consecutive rounds."""
    interested_keys = {c.key for c in cands if c.interested}
    for make in CHOKERS:
        choker = make()
        rng = Random(seed)
        current = cands
        for round_index in range(rounds):
            decision = choker.round(current, now=10.0 * round_index, rng=rng)
            assert len(decision.unchoked) <= 4
            assert len(set(decision.unchoked)) == len(decision.unchoked)
            assert set(decision.unchoked) <= interested_keys
            if decision.optimistic is not None:
                assert decision.optimistic in decision.unchoked
            # Feed the decision back in: unchoked peers become un-choked
            # candidates on the next round, as the peer would report.
            unchoked = set(decision.unchoked)
            current = [
                ChokeCandidate(
                    key=c.key,
                    interested=c.interested,
                    choked=c.key not in unchoked,
                    download_rate=c.download_rate,
                    upload_rate=c.upload_rate,
                    uploaded_to=c.uploaded_to,
                    downloaded_from=c.downloaded_from,
                    last_unchoked=c.last_unchoked,
                )
                for c in current
            ]


@settings(max_examples=40, deadline=None)
@given(candidates(), st.integers(0, 2**31))
def test_property_decisions_deterministic(cands, seed):
    """Same candidates + same RNG state => same decision, per strategy."""
    for make in CHOKERS:
        first = make().round(cands, now=0.0, rng=Random(seed))
        second = make().round(cands, now=0.0, rng=Random(seed))
        assert first.unchoked == second.unchoked
        assert first.optimistic == second.optimistic


@settings(max_examples=40, deadline=None)
@given(candidates(), st.integers(0, 2**31))
def test_property_tft_never_serves_over_threshold(cands, seed):
    threshold = 1000.0
    choker = TitForTatChoker(deficit_threshold=threshold)
    decision = choker.round(cands, now=0.0, rng=Random(seed))
    by_key = {c.key: c for c in cands}
    for key in decision.unchoked:
        candidate = by_key[key]
        assert candidate.uploaded_to - candidate.downloaded_from < threshold