"""Tests for churn processes and their interaction with the swarm."""

import hashlib
from random import Random

import pytest

from repro.sim.churn import (
    abort_downloads,
    flash_crowd,
    noise_peers,
    open_system_arrivals,
    poisson_arrivals,
)
from repro.sim.config import KIB, PeerConfig, SwarmConfig

from tests.conftest import fast_config, tiny_swarm


def config_factory(rng: Random) -> PeerConfig:
    return PeerConfig(upload_capacity=2 * KIB)


class TestPoissonArrivals:
    def test_arrival_count_matches_rate(self):
        swarm = tiny_swarm()
        count = poisson_arrivals(
            swarm, rate=0.1, duration=1000.0, config_factory=config_factory,
            rng=Random(4),
        )
        assert 60 <= count <= 140  # ~100 expected

    def test_peers_materialise(self):
        swarm = tiny_swarm()
        swarm.add_peer(config=fast_config(), is_seed=True)
        scheduled = poisson_arrivals(
            swarm, rate=0.05, duration=100.0, config_factory=config_factory,
            rng=Random(4),
        )
        swarm.run(100)
        assert len(swarm.peers) == 1 + scheduled

    def test_kwargs_factory_gives_fresh_objects(self):
        from repro.core.choke import LeecherChoker

        swarm = tiny_swarm()
        made = []

        def kwargs_factory():
            choker = LeecherChoker()
            made.append(choker)
            return {"leecher_choker": choker}

        poisson_arrivals(
            swarm, rate=0.1, duration=100.0, config_factory=config_factory,
            rng=Random(4), kwargs_factory=kwargs_factory,
        )
        swarm.run(100)
        chokers = [peer.leecher_choker for peer in swarm.peers.values()]
        assert len(set(map(id, chokers))) == len(chokers)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(
                tiny_swarm(), rate=0.0, duration=10.0, config_factory=config_factory
            )


class TestFlashCrowd:
    def test_all_arrive_within_spread(self):
        swarm = tiny_swarm()
        flash_crowd(swarm, 20, config_factory, rng=Random(2), spread=30.0)
        swarm.run(30)
        assert len(swarm.peers) == 20

    def test_none_before_start(self):
        swarm = tiny_swarm()
        flash_crowd(swarm, 20, config_factory, rng=Random(2), spread=30.0)
        assert len(swarm.peers) == 0


class TestNoisePeers:
    def test_noise_peers_come_and_go(self):
        swarm = tiny_swarm()
        swarm.add_peer(config=fast_config(), is_seed=True)
        noise_peers(swarm, count=10, duration=100.0, rng=Random(3), stay=5.0)
        swarm.run(200)
        # All noise peers have left again.
        assert len(swarm.peers) == 1
        assert len(swarm.result.departures) == 10

    def test_noise_peers_filtered_from_entropy(self):
        """§IV-A.1: peers staying under 10 s must not bias the entropy
        characterisation."""
        from repro.analysis.entropy import entropy_ratios
        from repro.instrumentation import Instrumentation

        swarm = tiny_swarm(num_pieces=16, seed=9)
        swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(3):
            swarm.add_peer(config=fast_config(upload=2 * KIB))
        trace = Instrumentation()
        swarm.add_peer(config=fast_config(upload=2 * KIB), observer=trace)
        trace.start_sampling()
        noise_peers(swarm, count=15, duration=300.0, rng=Random(3), stay=4.0)
        swarm.run(600)
        trace.finalize()
        local_ratios, remote_ratios = entropy_ratios(trace, min_presence=10.0)
        # 4 qualifying remotes at most (seed excluded from leecher ratios).
        assert len(local_ratios) <= 4

    def test_noise_transfers_nothing(self):
        swarm = tiny_swarm(num_pieces=16, seed=9)
        swarm.add_peer(config=fast_config(), is_seed=True)
        noise_peers(swarm, count=5, duration=50.0, rng=Random(3), stay=3.0)
        swarm.run(100)
        for address, uploaded in swarm.result.bytes_uploaded.items():
            if address in swarm.result.departures:
                assert swarm.result.bytes_downloaded[address] < swarm.metainfo.geometry.piece_size


class TestAbortDownloads:
    def test_aborts_thin_the_population(self):
        swarm = tiny_swarm(num_pieces=64)
        swarm.add_peer(config=fast_config(upload=1 * KIB), is_seed=True)
        for __ in range(10):
            swarm.add_peer(config=fast_config(upload=1 * KIB))
        abort_downloads(swarm, probability=0.5, check_interval=50.0, rng=Random(5))
        swarm.run(400)
        assert len(swarm.result.departures) > 0

    def test_zero_probability_aborts_nothing(self):
        swarm = tiny_swarm(num_pieces=8)
        swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(3):
            swarm.add_peer(config=fast_config())
        abort_downloads(swarm, probability=0.0, check_interval=20.0, rng=Random(5))
        swarm.run(100)
        departed_leechers = [
            address
            for address in swarm.result.departures
            if address not in swarm.result.completions
        ]
        assert departed_leechers == []

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            abort_downloads(tiny_swarm(), probability=1.5)

    def test_seeds_never_aborted(self):
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        abort_downloads(swarm, probability=1.0, check_interval=10.0, rng=Random(5))
        swarm.run(50)
        assert seed.online


class TestMidRunAttachment:
    """Regression: arrival processes whose ``start`` lies before the
    current clock used to trip the engine's schedule-in-the-past guard;
    the delay is now clamped to "now"."""

    def test_poisson_arrivals_attach_to_running_swarm(self):
        swarm = tiny_swarm()
        swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.run(50.0)  # the clock is now well past start=0
        scheduled = poisson_arrivals(
            swarm, rate=0.5, duration=40.0, config_factory=config_factory,
            rng=Random(4),
        )
        assert scheduled > 0
        swarm.run(50.0)
        # Past-due arrivals fire immediately instead of raising.
        assert len(swarm.peers) == 1 + scheduled

    def test_flash_crowd_attaches_to_running_swarm(self):
        swarm = tiny_swarm()
        swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.run(120.0)
        flash_crowd(
            swarm, num_peers=5, config_factory=config_factory,
            rng=Random(9), spread=30.0,
        )
        swarm.run(40.0)
        assert len(swarm.peers) == 6

    def test_direct_negative_delay_clamped(self):
        swarm = tiny_swarm()
        swarm.run(10.0)
        swarm.schedule_arrival(-5.0, config=fast_config())
        swarm.run(0.0)
        assert len(swarm.peers) == 1


class TestOpenSystemArrivals:
    def test_forces_departure_on_completion(self):
        swarm = tiny_swarm()
        swarm.add_peer(config=fast_config(), is_seed=True)
        scheduled = open_system_arrivals(
            swarm, rate=0.1, duration=100.0, rng=Random(4),
            config_factory=lambda rng: PeerConfig(
                upload_capacity=8 * KIB, seeding_time=600.0,
            ),
        )
        assert scheduled > 0
        swarm.run(400.0)
        # Every completed arrival departed immediately despite the
        # factory asking for a long seeding time.
        finished = set(swarm.result.completions) & set(swarm.result.join_times)
        assert finished
        assert finished <= set(swarm.result.departures)

    def test_matches_poisson_schedule(self):
        """Same rng => the arrival *times* are those of poisson_arrivals;
        only the seeding_time override differs."""
        a, b = tiny_swarm(), tiny_swarm()
        open_system_arrivals(
            a, rate=0.2, duration=50.0, config_factory=config_factory,
            rng=Random(11),
        )
        poisson_arrivals(
            b, rate=0.2, duration=50.0, config_factory=config_factory,
            rng=Random(11),
        )
        a.run(60.0)
        b.run(60.0)
        assert sorted(a.result.join_times.values()) == sorted(
            b.result.join_times.values()
        )


def swarm_fingerprint(swarm) -> str:
    """Digest of everything event ordering can influence: the peer
    roster in join order, every peer's piece set, and the result's
    timing maps."""
    digest = hashlib.sha256()
    digest.update(repr(list(swarm.peers)).encode())
    for address, peer in swarm.peers.items():
        digest.update(repr((address, sorted(peer.bitfield.have_set))).encode())
    result = swarm.result
    for mapping in (result.join_times, result.completions, result.departures):
        digest.update(repr(sorted(mapping.items())).encode())
    digest.update(repr(result.bytes_moved).encode())
    return digest.hexdigest()


class TestEventQueueArrivalEquivalence:
    """Heap-vs-wheel differential coverage of the arrival edge cases.

    The calendar queue buckets events by ``floor(time / bucket_width)``
    (width 0.25 s): arrivals landing *exactly* on a bucket boundary and
    past-due arrivals clamped to "now" (which may itself sit on a
    boundary after ``run_until``) are the spots where an epoch
    off-by-one would silently reorder events.  Both backends must
    produce fingerprint-identical swarms.
    """

    BUCKET_WIDTH = 0.25  # the engine's default wheel epoch size

    def make_swarm(self, event_queue: str):
        return tiny_swarm(
            swarm_config=SwarmConfig(
                seed=7, verify_piece_hashes=False, snapshot_interval=5.0,
                extra={"event_queue": event_queue},
            )
        )

    def run_boundary_exact(self, event_queue: str):
        swarm = self.make_swarm(event_queue)
        swarm.add_peer(config=fast_config(), is_seed=True)
        # Arrivals pinned to exact epoch boundaries, including several
        # simultaneous ones whose relative order must be preserved.
        for delay in (0.0, 0.25, 0.25, 0.25, 0.5, 2.0, 2.0, 7.75):
            swarm.schedule_arrival(delay, config=fast_config(upload=2 * KIB))
        swarm.run(60.0)
        return swarm

    def run_past_due_clamped(self, event_queue: str):
        swarm = self.make_swarm(event_queue)
        swarm.add_peer(config=fast_config(), is_seed=True)
        # run_until leaves the clock exactly on a bucket boundary...
        swarm.run(50.0)
        # ...where a whole past-due process is clamped to "now".
        scheduled = poisson_arrivals(
            swarm, rate=0.5, duration=20.0, config_factory=config_factory,
            rng=Random(4),
        )
        swarm.schedule_arrival(-5.0, config=fast_config(upload=2 * KIB))
        # And again from a clock *off* the boundary grid.
        swarm.run(10.1)
        swarm.schedule_arrival(-1.0, config=fast_config(upload=2 * KIB))
        swarm.run(30.0)
        assert len(swarm.peers) == 3 + scheduled
        return swarm

    def test_boundary_exact_arrivals_are_backend_invariant(self):
        heap = self.run_boundary_exact("heap")
        wheel = self.run_boundary_exact("wheel")
        assert len(heap.peers) == len(wheel.peers) == 9
        assert swarm_fingerprint(heap) == swarm_fingerprint(wheel)
        assert (
            heap.simulator.events_processed == wheel.simulator.events_processed
        )

    def test_past_due_clamped_arrivals_are_backend_invariant(self):
        heap = self.run_past_due_clamped("heap")
        wheel = self.run_past_due_clamped("wheel")
        assert swarm_fingerprint(heap) == swarm_fingerprint(wheel)
        assert (
            heap.simulator.events_processed == wheel.simulator.events_processed
        )

    def test_boundary_exact_join_order_is_schedule_order(self):
        """Simultaneous boundary arrivals join in scheduling order on
        both backends (addresses are handed out at add_peer time, so
        the roster order *is* the event order)."""
        for event_queue in ("heap", "wheel"):
            swarm = self.run_boundary_exact(event_queue)
            join_times = swarm.result.join_times
            roster = list(swarm.peers)
            assert [join_times[address] for address in roster] == sorted(
                join_times[address] for address in roster
            )
