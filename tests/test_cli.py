"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "nonsense"])


class TestListTorrents:
    def test_prints_26_rows(self, capsys):
        code, out = run_cli(capsys, "list-torrents")
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 2 + 26  # header + separator + rows
        assert "transient" in out and "steady" in out


class TestRunAndAnalyze:
    @pytest.fixture(scope="class")
    def saved_trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "trace.json"
        code = main(
            [
                "run",
                "--torrent", "19",
                "--seed", "5",
                "--duration", "400",
                "--save", str(path),
            ]
        )
        assert code == 0
        return path

    def test_run_saves_valid_json(self, saved_trace):
        document = json.loads(saved_trace.read_text())
        assert document["version"] == 1
        assert document["records"]

    def test_analyze_entropy(self, saved_trace, capsys):
        code, out = run_cli(capsys, "analyze", str(saved_trace))
        assert code == 0
        assert "a/b" in out and "c/d" in out

    def test_analyze_replication(self, saved_trace, capsys):
        code, out = run_cli(
            capsys, "analyze", str(saved_trace), "--figure", "replication"
        )
        assert code == 0
        assert "mean" in out

    def test_analyze_rarest_set(self, saved_trace, capsys):
        code, out = run_cli(
            capsys, "analyze", str(saved_trace), "--figure", "rarest-set"
        )
        assert code == 0
        assert "rarest" in out

    def test_analyze_peer_set(self, saved_trace, capsys):
        code, out = run_cli(
            capsys, "analyze", str(saved_trace), "--figure", "peer-set"
        )
        assert code == 0
        assert "size" in out

    def test_analyze_interarrival(self, saved_trace, capsys):
        code, out = run_cli(
            capsys, "analyze", str(saved_trace), "--figure", "interarrival",
            "--kind", "block",
        )
        assert code == 0
        assert "slowdown" in out

    def test_analyze_fairness(self, saved_trace, capsys):
        code, out = run_cli(
            capsys, "analyze", str(saved_trace), "--figure", "fairness"
        )
        assert code == 0
        assert "upload LS" in out


class TestFigureCommand:
    def test_figure_runs_experiment(self, capsys):
        code, out = run_cli(
            capsys, "figure", "entropy", "--torrent", "19",
            "--seed", "5", "--duration", "300",
        )
        assert code == 0
        assert "a/b" in out


class TestModelCommand:
    def test_steady_state_printed(self, capsys):
        code, out = run_cli(
            capsys,
            "model",
            "--arrival-rate", "0.05",
            "--upload", "4096",
            "--content", "131072",
            "--seed-stay", "10",
            "--duration", "500",
        )
        assert code == 0
        assert "steady state" in out
        assert "mean download time" in out

    def test_no_equilibrium_case(self, capsys):
        code, out = run_cli(
            capsys,
            "model",
            "--arrival-rate", "0.05",
            "--upload", "4096",
            "--content", "131072",
            "--seed-stay", "0",
            "--duration", "200",
        )
        assert code == 0
        assert "no finite steady state" in out


class TestFigureVariants:
    @pytest.fixture(scope="class")
    def base_args(self):
        return ["--torrent", "19", "--seed", "5", "--duration", "300"]

    @pytest.mark.parametrize(
        "figure,expect",
        [
            ("replication", "mean"),
            ("rarest-set", "rarest"),
            ("peer-set", "size"),
            ("interarrival", "slowdown"),
            ("fairness", "upload LS"),
        ],
    )
    def test_each_live_figure_renders(self, capsys, base_args, figure, expect):
        code, out = run_cli(capsys, "figure", figure, *base_args)
        assert code == 0
        assert expect in out


class TestTraceAndReplay:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-trace") / "run.jsonl"
        code = main(
            [
                "run",
                "--torrent", "2",
                "--seed", "11",
                "--duration", "300",
                "--trace", str(path),
            ]
        )
        assert code == 0
        return path

    def test_trace_file_is_framed_jsonl(self, trace_file):
        lines = trace_file.read_text().splitlines()
        assert json.loads(lines[0]) == {"type": "trace_start", "v": 1}
        footer = json.loads(lines[-1])
        assert footer["type"] == "trace_end"
        assert footer["events"] == len(lines) - 2

    def test_replay_list_peers(self, trace_file, capsys):
        code, out = run_cli(capsys, "replay", str(trace_file), "--list-peers")
        assert code == 0
        assert out.strip().startswith("10.")

    @pytest.mark.parametrize("figure", ["entropy", "replication", "peer-set"])
    def test_replay_figures_render(self, trace_file, capsys, figure):
        code, out = run_cli(capsys, "replay", str(trace_file), "--figure", figure)
        assert code == 0
        assert out.strip()

    def test_replay_figure_matches_live_run(self, trace_file, capsys):
        live_code, live_out = run_cli(
            capsys,
            "figure", "entropy",
            "--torrent", "2", "--seed", "11", "--duration", "300",
        )
        replay_code, replay_out = run_cli(
            capsys, "replay", str(trace_file), "--figure", "entropy"
        )
        assert live_code == 0 and replay_code == 0
        assert replay_out == live_out

    def test_metrics_command(self, capsys):
        code, out = run_cli(
            capsys,
            "metrics",
            "--torrent", "2", "--seed", "11", "--duration", "150",
        )
        assert code == 0
        assert "messages.sent" in out
        assert "engine profile" in out
