"""Tests for the client-mix workload and swarm utilisation accounting."""

from random import Random

import pytest

from repro.sim.config import KIB
from repro.workloads.clients import CLIENT_MIX_2005, client_share, sample_client_id

from tests.conftest import fast_config, tiny_swarm


class TestClientMix:
    def test_sample_returns_known_ids(self):
        rng = Random(1)
        known = {client_id for client_id, __ in CLIENT_MIX_2005}
        for __ in range(200):
            assert sample_client_id(rng) in known

    def test_mix_weights_respected(self):
        rng = Random(2)
        samples = [sample_client_id(rng) for __ in range(4000)]
        share = dict(client_share(samples))
        assert share["-AZ2304"] == pytest.approx(0.35, abs=0.04)
        assert share["M4-0-2"] == pytest.approx(0.20, abs=0.04)

    def test_client_share_sorted(self):
        shares = client_share(["a", "b", "b", "b"])
        assert shares[0] == ("b", 0.75)
        assert shares[1] == ("a", 0.25)

    def test_client_share_empty(self):
        assert client_share([]) == []

    def test_client_ids_flow_into_traces(self):
        """Workload populations carry mixed client IDs end to end when a
        mix is requested; the default stays a mainline monoculture."""
        from repro.workloads import build_experiment, scaled_copy, scenario_by_id

        scenario = scaled_copy(
            scenario_by_id(13), seeds=1, leechers=10, num_pieces=8,
            duration=60.0, arrival_rate=0.0, local_join_time=5.0,
        )
        harness = build_experiment(scenario, seed=9, client_mix=CLIENT_MIX_2005)
        harness.run()
        ids = {
            record.client_id
            for record in harness.instrumentation.records.values()
        }
        assert len(ids) >= 2  # a mixed population, not a monoculture

        plain = build_experiment(scenario, seed=9)
        plain.run()
        plain_ids = {
            record.client_id
            for record in plain.instrumentation.records.values()
        }
        assert plain_ids == {"M4-0-2"}

    def test_peer_ids_parse_back(self):
        """Generated peer IDs round-trip through the identification rule
        for the formats it recognises."""
        from repro.protocol.peer_id import make_peer_id, parse_client_id

        rng = Random(3)
        for client_id, __ in CLIENT_MIX_2005:
            raw = make_peer_id(client_id, rng).raw
            parsed = parse_client_id(raw)
            if parsed is not None:
                assert client_id.startswith(parsed) or parsed == client_id


class TestUtilization:
    def test_bounded_by_one(self):
        swarm = tiny_swarm(num_pieces=16)
        swarm.add_peer(config=fast_config(upload=2 * KIB), is_seed=True)
        for __ in range(4):
            swarm.add_peer(config=fast_config(upload=2 * KIB))
        result = swarm.run(300)
        utilization = result.utilization()
        assert utilization is not None
        assert 0.0 <= utilization <= 1.0 + 1e-9

    def test_busy_swarm_uses_most_capacity(self):
        """While everyone is leeching, most upload capacity is in use —
        the high efficiency of [21] that the paper confirms."""
        swarm = tiny_swarm(num_pieces=256, seed=21)
        swarm.add_peer(config=fast_config(upload=4 * KIB), is_seed=True)
        for __ in range(7):
            swarm.add_peer(config=fast_config(upload=4 * KIB))
        result = swarm.run(200)  # mid-download, nobody has finished
        assert result.utilization() > 0.5

    def test_idle_swarm_wastes_capacity(self):
        """All-seed swarms move nothing: utilisation falls toward zero."""
        swarm = tiny_swarm(num_pieces=8)
        for __ in range(3):
            swarm.add_peer(config=fast_config(), is_seed=True)
        result = swarm.run(100)
        assert result.utilization() == pytest.approx(0.0)

    def test_none_before_any_tick(self):
        swarm = tiny_swarm(num_pieces=8)
        assert swarm.result.utilization() is None

    def test_bytes_moved_matches_downloads(self):
        swarm = tiny_swarm(num_pieces=8)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        result = swarm.run(300)
        assert result.bytes_moved == pytest.approx(leecher.total_downloaded)
