"""Tests for the idealised network-coding comparator."""

from repro.coding import CodingSwarm
from repro.sim.config import KIB, PeerConfig, SwarmConfig


def coding_swarm(total_kib=64, seed=3, **config_kwargs):
    config = SwarmConfig(seed=seed, **config_kwargs)
    return CodingSwarm(total_size=total_kib * KIB, config=config)


class TestCodingSwarm:
    def test_single_leecher_completes(self):
        swarm = coding_swarm()
        swarm.add_peer("seed", PeerConfig(upload_capacity=8 * KIB), is_seed=True)
        swarm.add_peer("leech", PeerConfig(upload_capacity=8 * KIB))
        result = swarm.run(300)
        assert "leech" in result.completions
        assert result.download_time("leech") > 0

    def test_completion_bounded_by_seed_capacity(self):
        # 64 kiB through a 2 kiB/s source: not before 32 s.
        swarm = coding_swarm()
        swarm.add_peer("seed", PeerConfig(upload_capacity=2 * KIB), is_seed=True)
        swarm.add_peer("leech", PeerConfig(upload_capacity=8 * KIB))
        result = swarm.run(600)
        assert result.completions["leech"] >= 32.0

    def test_provenance_cap_binds(self):
        """Two leechers served by one slow seed cannot finish faster than
        the seed can emit one copy of the information."""
        swarm = coding_swarm()
        swarm.add_peer("seed", PeerConfig(upload_capacity=2 * KIB), is_seed=True)
        swarm.add_peer("a", PeerConfig(upload_capacity=100 * KIB))
        swarm.add_peer("b", PeerConfig(upload_capacity=100 * KIB))
        result = swarm.run(600)
        for name in ("a", "b"):
            assert result.completions[name] >= 32.0

    def test_many_leechers_complete(self):
        swarm = coding_swarm()
        swarm.add_peer("seed", PeerConfig(upload_capacity=16 * KIB), is_seed=True)
        for index in range(8):
            swarm.add_peer("l%d" % index, PeerConfig(upload_capacity=8 * KIB))
        result = swarm.run(600)
        assert len(result.completions) == 8
        assert result.mean_download_time() is not None

    def test_interest_is_ideal(self):
        """Coding interest: any incomplete peer wants any non-empty peer."""
        swarm = coding_swarm()
        swarm.add_peer("seed", PeerConfig(upload_capacity=8 * KIB), is_seed=True)
        swarm.add_peer("a", PeerConfig(upload_capacity=8 * KIB))
        swarm.add_peer("b", PeerConfig(upload_capacity=8 * KIB))
        swarm._build_graph()
        a = swarm.peers["a"]
        b = swarm.peers["b"]
        seed = swarm.peers["seed"]
        assert not a.interested_in(b)  # b has nothing yet
        b.rank = 1.0
        assert a.interested_in(b)  # any information is innovative
        assert not seed.interested_in(b)  # seeds want nothing

    def test_determinism(self):
        def run():
            swarm = coding_swarm(seed=5)
            swarm.add_peer("seed", PeerConfig(upload_capacity=8 * KIB), is_seed=True)
            for index in range(5):
                swarm.add_peer("l%d" % index, PeerConfig(upload_capacity=4 * KIB))
            return sorted(swarm.run(600).completions.items())

        assert run() == run()

    def test_empty_result_helpers(self):
        swarm = coding_swarm()
        result = swarm.run(10)
        assert result.mean_download_time() is None
        assert result.download_time("ghost") is None
