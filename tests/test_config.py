"""Tests for the configuration dataclasses and their §III-C defaults."""

import pytest

from repro.sim.config import KIB, PeerConfig, SwarmConfig


class TestPeerConfigDefaults:
    """The paper's mainline 4.0.2 defaults (§III-C)."""

    def test_upload_cap_20_kb(self):
        assert PeerConfig().upload_capacity == 20 * KIB

    def test_download_unconstrained(self):
        assert PeerConfig().download_capacity is None

    def test_peer_set_limits(self):
        config = PeerConfig()
        assert config.max_peer_set == 80
        assert config.min_peer_set == 20
        assert config.max_initiated == 40

    def test_active_peer_set(self):
        assert PeerConfig().unchoke_slots == 4

    def test_random_first_threshold(self):
        assert PeerConfig().random_first_threshold == 4

    def test_choke_cadence(self):
        config = PeerConfig()
        assert config.choke_interval == 10.0
        assert config.optimistic_rounds == 3  # 30 s optimistic rotation

    def test_rate_window(self):
        assert PeerConfig().rate_window == 20.0

    def test_policies_enabled(self):
        config = PeerConfig()
        assert config.endgame_enabled
        assert config.strict_priority
        assert not config.super_seeding

    def test_client_id(self):
        assert PeerConfig().client_id == "M4-0-2"


class TestPeerConfigValidation:
    def test_negative_upload_rejected(self):
        with pytest.raises(ValueError):
            PeerConfig(upload_capacity=-1.0)

    def test_zero_upload_allowed(self):
        assert PeerConfig(upload_capacity=0.0).upload_capacity == 0.0

    def test_bad_download_rejected(self):
        with pytest.raises(ValueError):
            PeerConfig(download_capacity=0.0)

    def test_peer_set_ordering_enforced(self):
        with pytest.raises(ValueError):
            PeerConfig(min_peer_set=0)
        with pytest.raises(ValueError):
            PeerConfig(min_peer_set=90, max_peer_set=80)

    def test_positive_counts_enforced(self):
        with pytest.raises(ValueError):
            PeerConfig(max_initiated=0)
        with pytest.raises(ValueError):
            PeerConfig(unchoke_slots=0)
        with pytest.raises(ValueError):
            PeerConfig(request_pipeline_depth=0)


class TestSwarmConfigDefaults:
    def test_tracker_defaults(self):
        config = SwarmConfig()
        assert config.tracker_num_want == 50
        assert config.announce_interval == 30.0 * 60.0

    def test_fluid_defaults(self):
        config = SwarmConfig()
        assert config.tick_interval == 1.0
        assert config.message_latency == 0.0

    def test_hash_verification_off_by_default(self):
        assert not SwarmConfig().verify_piece_hashes

    def test_extra_dict_is_per_instance(self):
        first = SwarmConfig()
        second = SwarmConfig()
        first.extra["x"] = 1
        assert "x" not in second.extra
