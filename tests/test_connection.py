"""Unit tests for the per-link connection state machine."""

import pytest

from repro.protocol.metainfo import BlockRef

from tests.conftest import fast_config, tiny_swarm


def linked_pair(num_pieces=8):
    """Two peers with an established connection; returns both endpoints."""
    swarm = tiny_swarm(num_pieces=num_pieces)
    a = swarm.add_peer(config=fast_config(), is_seed=True)
    b = swarm.add_peer(config=fast_config())
    conn_ab = a.connections[b.address]
    conn_ba = b.connections[a.address]
    return swarm, a, b, conn_ab, conn_ba


class TestTwinMirroring:
    def test_twins_cross_linked(self):
        __, a, b, conn_ab, conn_ba = linked_pair()
        assert conn_ab.twin is conn_ba
        assert conn_ba.twin is conn_ab

    def test_initiator_flags_opposite(self):
        __, a, b, conn_ab, conn_ba = linked_pair()
        assert conn_ab.initiated_by_local != conn_ba.initiated_by_local

    def test_interest_mirrors(self):
        __, a, b, conn_ab, conn_ba = linked_pair()
        # b (empty) is interested in a (seed); a is not interested in b.
        assert conn_ba.am_interested
        assert conn_ab.peer_interested
        assert not conn_ab.am_interested
        assert not conn_ba.peer_interested

    def test_choke_state_mirrors_after_round(self):
        swarm, a, b, conn_ab, conn_ba = linked_pair()
        swarm.run(30)  # at least one choke round
        assert conn_ab.am_choking == conn_ba.peer_choking
        assert conn_ba.am_choking == conn_ab.peer_choking


class TestUploadQueue:
    def test_advance_completes_blocks_in_order(self):
        __, a, b, conn_ab, __b = linked_pair()
        conn_ab.upload_queue.extend(
            [BlockRef(0, 0, 1024), BlockRef(0, 1024, 1024)]
        )
        completed = conn_ab.advance_upload(1024)
        assert completed == [BlockRef(0, 0, 1024)]
        completed = conn_ab.advance_upload(1024)
        assert completed == [BlockRef(0, 1024, 1024)]

    def test_partial_progress_accumulates(self):
        __, a, b, conn_ab, __b = linked_pair()
        conn_ab.upload_queue.append(BlockRef(0, 0, 1024))
        assert conn_ab.advance_upload(500) == []
        assert conn_ab.upload_progress == 500
        assert conn_ab.advance_upload(524) == [BlockRef(0, 0, 1024)]
        assert conn_ab.upload_progress == 0.0

    def test_multiple_blocks_in_one_advance(self):
        __, a, b, conn_ab, __b = linked_pair()
        blocks = [BlockRef(0, i * 256, 256) for i in range(4)]
        conn_ab.upload_queue.extend(blocks)
        completed = conn_ab.advance_upload(1024)
        assert completed == blocks

    def test_queued_upload_bytes(self):
        __, a, b, conn_ab, __b = linked_pair()
        conn_ab.upload_queue.extend([BlockRef(0, 0, 1000), BlockRef(0, 1000, 24)])
        conn_ab.advance_upload(100)
        assert conn_ab.queued_upload_bytes() == pytest.approx(924)

    def test_cancel_head_block_loses_progress(self):
        __, a, b, conn_ab, __b = linked_pair()
        conn_ab.upload_queue.extend([BlockRef(0, 0, 1000), BlockRef(0, 1000, 1000)])
        conn_ab.advance_upload(500)
        assert conn_ab.cancel_queued_block(BlockRef(0, 0, 1000))
        assert conn_ab.upload_progress == 0.0
        assert list(conn_ab.upload_queue) == [BlockRef(0, 1000, 1000)]

    def test_cancel_middle_block_keeps_progress(self):
        __, a, b, conn_ab, __b = linked_pair()
        conn_ab.upload_queue.extend([BlockRef(0, 0, 1000), BlockRef(0, 1000, 1000)])
        conn_ab.advance_upload(500)
        assert conn_ab.cancel_queued_block(BlockRef(0, 1000, 1000))
        assert conn_ab.upload_progress == 500

    def test_cancel_missing_block(self):
        __, a, b, conn_ab, __b = linked_pair()
        assert not conn_ab.cancel_queued_block(BlockRef(0, 0, 1000))

    def test_clear_upload_queue(self):
        __, a, b, conn_ab, __b = linked_pair()
        conn_ab.upload_queue.append(BlockRef(0, 0, 1000))
        conn_ab.advance_upload(10)
        conn_ab.clear_upload_queue()
        assert not conn_ab.upload_queue
        assert conn_ab.upload_progress == 0.0

    def test_has_active_upload_requires_unchoked(self):
        __, a, b, conn_ab, __b = linked_pair()
        conn_ab.upload_queue.append(BlockRef(0, 0, 1000))
        conn_ab.am_choking = True
        assert not conn_ab.has_active_upload()
        conn_ab.am_choking = False
        assert conn_ab.has_active_upload()
        conn_ab.closed = True
        assert not conn_ab.has_active_upload()


class TestRepr:
    def test_flags_rendered(self):
        __, a, b, conn_ab, __b = linked_pair()
        text = repr(conn_ab)
        assert a.address in text and b.address in text
