"""Execute the library's docstring examples as tests."""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.analysis.experiments",
    "repro.analysis.stats",
    "repro.core.rate_estimator",
    "repro.instrumentation.metrics",
    "repro.instrumentation.trace",
    "repro.protocol.bencode",
    "repro.protocol.peer_id",
    "repro.protocol.stream",
    "repro.reporting.export",
    "repro.reporting.render",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    # importlib returns the real module even when a package __init__
    # re-exports a same-named function (e.g. repro.protocol.bencode).
    module = importlib.import_module(module_name)
    failures, tests = doctest.testmod(module, verbose=False)
    assert tests > 0, "expected at least one example in %s" % module_name
    assert failures == 0
