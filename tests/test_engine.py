"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator, Timer


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run_until(15.0)
        assert fired == [1, 10]

    def test_run_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run_until(5.0)
        assert fired == [1]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        Timer(sim, 10.0, lambda: ticks.append(sim.now))
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_start_at_phase(self):
        sim = Simulator()
        ticks = []
        Timer(sim, 10.0, lambda: ticks.append(sim.now), start_at=3.0)
        sim.run_until(25.0)
        assert ticks == [3.0, 13.0, 23.0]

    def test_stop(self):
        sim = Simulator()
        ticks = []
        timer = Timer(sim, 10.0, lambda: ticks.append(sim.now))
        sim.run_until(15.0)
        timer.stop()
        sim.run_until(100.0)
        assert ticks == [10.0]
        assert timer.stopped

    def test_stop_from_callback(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                timer.stop()

        timer = Timer(sim, 5.0, tick)
        sim.run_until(100.0)
        assert ticks == [5.0, 10.0]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Timer(Simulator(), 0.0, lambda: None)

    def test_interval_property(self):
        assert Timer(Simulator(), 2.5, lambda: None).interval == 2.5


class TestDeterminism:
    def test_two_identical_runs_produce_identical_traces(self):
        def run():
            sim = Simulator()
            trace = []
            Timer(sim, 1.0, lambda: trace.append(("t", sim.now)))
            sim.schedule(2.5, lambda: trace.append(("e", sim.now)))
            sim.run_until(5.0)
            return trace

        assert run() == run()
