"""Tests for the multi-seed replication runner and the entropy-over-time
series."""

import pytest

from repro.analysis.entropy import interest_fraction_series
from repro.analysis.experiments import (
    run_replications,
    summarize_metric,
)
from repro.instrumentation import Instrumentation
from repro.sim.config import KIB

from tests.conftest import fast_config, tiny_swarm


class TestSummarizeMetric:
    def test_mean_and_std(self):
        summary = summarize_metric("x", [1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.n == 3

    def test_single_value(self):
        summary = summarize_metric("x", [5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_nan_dropped(self):
        summary = summarize_metric("x", [1.0, float("nan"), 3.0])
        assert summary.n == 2
        assert summary.mean == pytest.approx(2.0)

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            summarize_metric("x", [float("nan")])

    def test_ci_contains_mean(self):
        summary = summarize_metric("x", [1.0, 2.0, 3.0, 4.0])
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_higher_confidence_widens_interval(self):
        narrow = summarize_metric("x", [1.0, 2.0, 3.0], confidence=0.90)
        wide = summarize_metric("x", [1.0, 2.0, 3.0], confidence=0.99)
        assert wide.ci_high - wide.ci_low > narrow.ci_high - narrow.ci_low

    def test_unknown_confidence(self):
        with pytest.raises(ValueError):
            summarize_metric("x", [1.0], confidence=0.5)

    def test_str(self):
        text = str(summarize_metric("dl", [1.0, 2.0]))
        assert "dl" in text and "n=2" in text


class TestRunReplications:
    def test_aggregates_metrics(self):
        stats = run_replications(
            lambda seed: {"x": float(seed), "y": 2.0 * seed}, [1, 2, 3]
        )
        assert stats["x"].mean == pytest.approx(2.0)
        assert stats["y"].mean == pytest.approx(4.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_replications(lambda seed: {"x": 1.0}, [])

    def test_inconsistent_metrics_rejected(self):
        def experiment(seed):
            return {"x": 1.0} if seed == 1 else {"y": 1.0}

        with pytest.raises(ValueError):
            run_replications(experiment, [1, 2])

    def test_real_swarm_replications(self):
        """Download times vary across seeds but stay in a sane band."""

        def experiment(seed):
            swarm = tiny_swarm(num_pieces=8, seed=seed)
            swarm.add_peer(config=fast_config(), is_seed=True)
            leecher = swarm.add_peer(config=fast_config(upload=2 * KIB))
            result = swarm.run(400)
            return {"download_time": result.download_time(leecher.address)}

        stats = run_replications(experiment, [1, 2, 3, 4])
        summary = stats["download_time"]
        assert summary.n == 4
        assert 4.0 <= summary.mean <= 120.0
        assert summary.ci_low <= summary.mean <= summary.ci_high


class TestInterestFractionSeries:
    def test_steady_swarm_high_fraction(self):
        swarm = tiny_swarm(num_pieces=24, seed=3)
        swarm.add_peer(config=fast_config(upload=2 * KIB), is_seed=True)
        for __ in range(6):
            swarm.add_peer(config=fast_config(upload=2 * KIB))
        trace = Instrumentation()
        swarm.add_peer(config=fast_config(upload=2 * KIB), observer=trace)
        trace.start_sampling()
        swarm.run(600)
        trace.finalize()
        times, fractions = interest_fraction_series(trace, step=20.0)
        assert times
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions)
        # Mid-download the local peer wants something from most leechers.
        assert max(fractions) > 0.5

    def test_empty_trace(self):
        trace = Instrumentation()
        trace._finalized_at = 0.0
        assert interest_fraction_series(trace) == ([], [])
