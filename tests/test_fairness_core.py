"""Tests for the paper's two fairness criteria and figure aggregations."""

import pytest
from hypothesis import given, strategies as st

from repro.core.fairness import (
    contribution_sets,
    fairness_report,
    jain_index,
    leecher_fairness_violations,
    reciprocation_shares,
    seed_service_uniformity,
)


class TestLeecherCriterion:
    def test_no_violation_when_ordered(self):
        uploads = {"a": 10.0, "b": 20.0, "c": 30.0}
        downloads = {"a": 100.0, "b": 200.0, "c": 300.0}
        violations, pairs = leecher_fairness_violations(uploads, downloads)
        assert violations == 0
        assert pairs == 3

    def test_violation_detected(self):
        uploads = {"slow": 10.0, "fast": 100.0}
        downloads = {"slow": 500.0, "fast": 50.0}
        violations, pairs = leecher_fairness_violations(uploads, downloads)
        assert violations == 1
        assert pairs == 1

    def test_excess_capacity_to_slow_peer_is_allowed(self):
        """The criterion orders service, it does not forbid serving the
        slow peer: equal downloads with unequal uploads is fine."""
        uploads = {"slow": 10.0, "fast": 100.0}
        downloads = {"slow": 100.0, "fast": 100.0}
        violations, __ = leecher_fairness_violations(uploads, downloads)
        assert violations == 0

    def test_tolerance_suppresses_noise(self):
        uploads = {"a": 100.0, "b": 103.0}
        downloads = {"a": 200.0, "b": 198.0}
        violations, pairs = leecher_fairness_violations(
            uploads, downloads, tolerance=0.05
        )
        assert pairs == 0  # uploads within tolerance: not comparable

    def test_empty(self):
        assert leecher_fairness_violations({}, {}) == (0, 0)


class TestJain:
    def test_equal_values(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_value(self):
        assert jain_index([42.0]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        # One peer gets everything: index = 1/n.
        assert jain_index([100.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty(self):
        assert jain_index([]) == 1.0

    def test_all_zero(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_seed_service_uniformity(self):
        assert seed_service_uniformity({"a": 10.0, "b": 10.0}) == pytest.approx(1.0)


class TestContributionSets:
    def test_shares_sum_to_at_most_one(self):
        totals = {str(i): float(100 - i) for i in range(40)}
        shares = contribution_sets(totals)
        assert len(shares) == 6
        assert sum(shares) <= 1.0 + 1e-9

    def test_ranked_descending(self):
        totals = {str(i): float(i) for i in range(30)}
        shares = contribution_sets(totals)
        assert shares == sorted(shares, reverse=True)

    def test_concentrated_distribution(self):
        totals = {"big%d" % i: 1000.0 for i in range(5)}
        totals.update({"small%d" % i: 1.0 for i in range(25)})
        shares = contribution_sets(totals)
        assert shares[0] > 0.99

    def test_uniform_distribution(self):
        totals = {str(i): 10.0 for i in range(30)}
        shares = contribution_sets(totals)
        assert all(s == pytest.approx(shares[0]) for s in shares)

    def test_empty(self):
        assert contribution_sets({}) == [0.0] * 6

    def test_fewer_peers_than_sets(self):
        shares = contribution_sets({"a": 10.0})
        assert shares[0] == pytest.approx(1.0)
        assert shares[1:] == [0.0] * 5


class TestReciprocationShares:
    def test_reciprocation_alignment(self):
        """When download mirrors upload, the top set dominates both."""
        uploaded = {str(i): float(100 - i) for i in range(30)}
        downloaded = {str(i): float(100 - i) for i in range(30)}
        up_shares, down_shares = reciprocation_shares(uploaded, downloaded)
        assert up_shares[0] == max(up_shares)
        assert down_shares[0] == max(down_shares)

    def test_no_reciprocation(self):
        """Download concentrated on peers we never uploaded to."""
        uploaded = {str(i): float(30 - i) for i in range(30)}
        downloaded = {str(i): 1000.0 if i >= 25 else 0.0 for i in range(30)}
        up_shares, down_shares = reciprocation_shares(uploaded, downloaded)
        assert down_shares[0] == pytest.approx(0.0)
        assert down_shares[5] == pytest.approx(1.0)

    def test_grouping_follows_upload_direction(self):
        uploaded = {"a": 100.0, "b": 1.0}
        downloaded = {"a": 0.0, "b": 999.0}
        up_shares, down_shares = reciprocation_shares(
            uploaded, downloaded, set_size=1, num_sets=2
        )
        assert up_shares[0] == pytest.approx(100.0 / 101.0)
        assert down_shares[0] == pytest.approx(0.0)

    def test_empty(self):
        up, down = reciprocation_shares({}, {})
        assert up == [0.0] * 6 and down == [0.0] * 6


class TestReport:
    def test_combined(self):
        report = fairness_report(
            upload_speed={"a": 10.0, "b": 100.0},
            download_speed={"a": 50.0, "b": 500.0},
            seed_service={"a": 10.0, "b": 10.0},
        )
        assert report.leecher_violations == 0
        assert report.seed_service_jain == pytest.approx(1.0)
        assert report.leecher_violation_ratio == 0.0

    def test_violation_ratio_with_no_pairs(self):
        report = fairness_report({}, {}, {})
        assert report.leecher_violation_ratio == 0.0


@given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
def test_property_jain_bounds(values):
    index = jain_index(values)
    assert 0.0 < index <= 1.0 + 1e-9


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=4), st.floats(0.0, 1e6), max_size=40
    )
)
def test_property_contribution_shares_bounded(totals):
    shares = contribution_sets(totals)
    assert len(shares) == 6
    assert all(0.0 <= share <= 1.0 + 1e-9 for share in shares)
    assert sum(shares) <= 1.0 + 1e-6
