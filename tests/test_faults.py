"""Fault-injection layer: determinism, resilience, and the no-op guarantee.

Three families of tests:

* **no-op guarantee** — a swarm built with ``faults=None`` and one built
  with a disabled :class:`FaultConfig` produce *identical* event traces
  (message-level fingerprint), and same-seed faulty runs reproduce
  exactly;
* **unit behaviour** — the :class:`FaultPlan` decision functions
  (loss/duplication exemptions, backoff growth and cap, outage windows)
  and the :class:`Tracker` outage path;
* **resilience** (``chaos`` marker) — swarms under loss, outages,
  crashes and corruption still drain to all-seeds with the recovery
  machinery visibly engaged.
"""

import hashlib
from random import Random

import pytest

from repro.instrumentation import Instrumentation
from repro.protocol.messages import Bitfield as BitfieldMessage, Piece, Have
from repro.sim.config import KIB, FaultConfig, SwarmConfig
from repro.sim.faults import FAULT_PRESETS, FaultPlan
from repro.sim.observer import PeerObserver
from repro.tracker.tracker import Tracker, TrackerUnavailable

from tests.conftest import fast_config, tiny_swarm


class TraceFingerprint(PeerObserver):
    """Hash every observable event at one peer into a digest."""

    def __init__(self):
        self._hash = hashlib.sha256()

    def _feed(self, *parts) -> None:
        self._hash.update(repr(parts).encode())

    def on_connection_open(self, now, connection):
        self._feed("open", now, connection.remote.address)

    def on_connection_close(self, now, connection):
        self._feed("close", now, connection.remote.address)

    def on_message_sent(self, now, connection, message):
        self._feed("sent", now, connection.remote.address, type(message).__name__)

    def on_message_received(self, now, connection, message):
        self._feed("recv", now, connection.remote.address, type(message).__name__)

    def on_choke_round(self, now, decision):
        self._feed("choke", now, sorted(map(str, decision.unchoked)))

    def on_block_received(self, now, connection, piece, offset, length):
        self._feed("block", now, piece, offset, length)

    def on_piece_completed(self, now, piece):
        self._feed("piece", now, piece)

    def digest(self) -> str:
        return self._hash.hexdigest()


def fingerprint_run(faults, seed=21, duration=400.0, leechers=4):
    swarm = tiny_swarm(
        num_pieces=12,
        seed=seed,
        swarm_config=SwarmConfig(seed=seed, snapshot_interval=5.0, faults=faults),
    )
    swarm.add_peer(config=fast_config(), is_seed=True)
    observer = TraceFingerprint()
    local = swarm.add_peer(config=fast_config(upload=4 * KIB), observer=observer)
    for __ in range(leechers):
        swarm.add_peer(config=fast_config(upload=2 * KIB))
    swarm.run(duration)
    return observer.digest(), swarm, local


class TestNoOpGuarantee:
    def test_disabled_faultconfig_trace_identical_to_none(self):
        """Wiring the fault layer must not perturb a fault-free run."""
        baseline, swarm_a, __ = fingerprint_run(None)
        wired, swarm_b, __ = fingerprint_run(FaultConfig())
        assert baseline == wired
        assert swarm_a.simulator.events_processed == swarm_b.simulator.events_processed
        assert swarm_b.faults is None  # disabled config installs no plan

    def test_default_faultconfig_disabled(self):
        assert not FaultConfig().enabled
        assert FaultConfig(message_loss_rate=0.01).enabled
        assert FaultConfig(tracker_outages=((10.0, 5.0),)).enabled

    def test_faulty_runs_reproduce_with_same_seed(self):
        faults = FaultConfig(
            message_loss_rate=0.05, extra_jitter=0.1, hash_failure_rate=0.01
        )
        first, swarm_a, __ = fingerprint_run(faults, duration=300.0)
        second, swarm_b, __ = fingerprint_run(faults, duration=300.0)
        assert first == second
        assert dict(swarm_a.faults.stats) == dict(swarm_b.faults.stats)

    def test_faulty_trace_differs_from_clean(self):
        clean, __, __ = fingerprint_run(None)
        faulty, swarm, __ = fingerprint_run(FaultConfig(message_loss_rate=0.1))
        assert swarm.faults.stats["messages_dropped"] > 0
        assert clean != faulty


class TestFaultPlanUnits:
    def plan(self, **kwargs) -> FaultPlan:
        return FaultPlan(FaultConfig(**kwargs), Random(3))

    def test_requires_enabled_config(self):
        with pytest.raises(ValueError):
            FaultPlan(FaultConfig(), Random(1))

    def test_loss_rate_statistics(self):
        plan = self.plan(message_loss_rate=0.3)
        outcomes = [plan.deliveries(Have(piece=0)) for __ in range(2000)]
        dropped = sum(1 for d in outcomes if not d)
        assert 450 <= dropped <= 750  # ~600 expected
        assert plan.stats["messages_dropped"] == dropped

    def test_bitfield_messages_never_dropped(self):
        plan = self.plan(message_loss_rate=0.99)
        message = BitfieldMessage(bits=b"\x00")
        assert all(plan.deliveries(message) for __ in range(200))

    def test_piece_messages_never_duplicated(self):
        plan = self.plan(message_duplicate_rate=1.0)
        piece = Piece(piece=0, offset=0, data=b"")
        assert all(len(plan.deliveries(piece)) == 1 for __ in range(50))
        assert len(plan.deliveries(Have(piece=0))) == 2
        assert plan.stats["messages_duplicated"] == 1

    def test_jitter_bounded(self):
        plan = self.plan(extra_jitter=0.5)
        for __ in range(200):
            delays = plan.deliveries(Have(piece=0))
            assert all(0.0 <= d <= 0.5 for d in delays)

    def test_retry_delay_grows_and_caps(self):
        plan = self.plan(
            tracker_outages=((0.0, 10.0),),
            announce_retry_base=5.0,
            announce_retry_cap=60.0,
            announce_retry_jitter=0.0,
        )
        rng = Random(1)
        delays = [plan.retry_delay(attempt, rng) for attempt in range(6)]
        assert delays == [5.0, 10.0, 20.0, 40.0, 60.0, 60.0]

    def test_retry_delay_jitter_stays_near_nominal(self):
        plan = self.plan(tracker_outages=((0.0, 10.0),), announce_retry_jitter=0.25)
        rng = Random(7)
        for attempt in range(4):
            nominal = min(120.0, 5.0 * 2 ** attempt)
            for __ in range(20):
                delay = plan.retry_delay(attempt, rng)
                assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_outage_windows(self):
        plan = self.plan(tracker_outages=((10.0, 5.0), (100.0, 50.0)))
        assert not plan.tracker_down(9.9)
        assert plan.tracker_down(10.0)
        assert plan.tracker_down(14.9)
        assert not plan.tracker_down(15.0)
        assert plan.tracker_down(120.0)
        assert not plan.tracker_down(150.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(message_loss_rate=1.0)  # total loss deadlocks
        with pytest.raises(ValueError):
            FaultConfig(message_duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(idle_timeout=0.0)
        with pytest.raises(ValueError):
            FaultConfig(tracker_outages=((-1.0, 5.0),))
        with pytest.raises(ValueError):
            FaultConfig(announce_retry_jitter=1.0)

    def test_presets_are_enabled(self):
        for name, preset in FAULT_PRESETS.items():
            assert preset.enabled, name


class TestTrackerOutage:
    def test_announce_raises_during_outage(self):
        clock = {"now": 0.0}
        tracker = Tracker(Random(1), lambda: clock["now"])
        tracker.set_outages([(10.0, 20.0)])
        assert tracker.announce("a", event="started", num_want=0, is_seed=False) == []
        clock["now"] = 15.0
        with pytest.raises(TrackerUnavailable):
            tracker.announce("b", event="started", num_want=0, is_seed=False)
        assert tracker.failed_announce_count == 1
        assert tracker.num_registered == 1  # the failed announce registered nothing
        clock["now"] = 30.0
        tracker.announce("b", event="started", num_want=0, is_seed=False)
        assert tracker.num_registered == 2

    def test_join_during_outage_retries_with_backoff(self):
        """A peer joining while the tracker is down ends up connected."""
        faults = FaultConfig(tracker_outages=((0.0, 120.0),))
        swarm = tiny_swarm(
            num_pieces=8,
            swarm_config=SwarmConfig(seed=4, faults=faults),
        )
        swarm.add_peer(config=fast_config(), is_seed=True)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(), observer=trace)
        assert local.peer_set_size == 0  # join announce failed
        swarm.run(400.0)
        assert trace.fault_counters["announce_failure"] >= 1
        assert trace.fault_counters["announce_retry"] >= 1
        # The retry eventually connected and the download completed
        # (seed-to-seed links are dropped afterwards, so check the
        # completion record rather than the live peer set).
        assert local.address in swarm.result.completions
        assert local.is_seed

    def test_outage_counters_in_plan_stats(self):
        faults = FaultConfig(tracker_outages=((0.0, 60.0),))
        swarm = tiny_swarm(
            num_pieces=8, swarm_config=SwarmConfig(seed=4, faults=faults)
        )
        swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.add_peer(config=fast_config())
        swarm.run(300.0)
        assert swarm.faults.stats["announce_failures"] >= 2
        assert swarm.faults.stats["announce_retries"] >= 2
        assert swarm.tracker.failed_announce_count >= 2


class TestCrashAndReap:
    def crashed_pair(self, idle_timeout=60.0, sweep_interval=10.0):
        faults = FaultConfig(
            message_loss_rate=0.01,
            idle_timeout=idle_timeout,
            sweep_interval=sweep_interval,
        )
        swarm = tiny_swarm(
            num_pieces=8, swarm_config=SwarmConfig(seed=6, faults=faults)
        )
        seed_peer = swarm.add_peer(config=fast_config(), is_seed=True)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(), observer=trace)
        return swarm, seed_peer, local, trace

    def test_crash_leaves_half_open_connection(self):
        swarm, seed_peer, local, __ = self.crashed_pair()
        swarm.run(30.0)
        assert seed_peer.address in local.connections
        seed_peer.crash()
        connection = local.connections[seed_peer.address]
        assert connection.half_open
        assert seed_peer.address not in swarm.peers
        assert seed_peer.address in swarm.result.departures

    def test_crash_sends_no_stopped_announce(self):
        swarm, seed_peer, __, __ = self.crashed_pair()
        swarm.run(30.0)
        seed_peer.crash()
        # The tracker still believes the crashed peer is in the torrent.
        assert seed_peer.address in swarm.tracker.registered_addresses()

    def test_half_open_connection_reaped_after_idle_timeout(self):
        swarm, seed_peer, local, trace = self.crashed_pair(idle_timeout=60.0)
        swarm.run(30.0)
        seed_peer.crash()
        swarm.run(200.0)
        assert seed_peer.address not in local.connections
        assert trace.fault_counters["connection_reaped"] >= 1
        assert swarm.faults.stats["connections_reaped"] >= 1

    def test_crash_is_idempotent_and_leave_after_crash_noop(self):
        swarm, seed_peer, __, __ = self.crashed_pair()
        swarm.run(20.0)
        seed_peer.crash()
        departures = dict(swarm.result.departures)
        seed_peer.crash()
        seed_peer.leave()
        assert swarm.result.departures == departures

    def test_crash_sweep_crashes_peers(self):
        faults = FaultConfig(crash_probability=0.5, crash_interval=30.0)
        swarm = tiny_swarm(
            num_pieces=8, swarm_config=SwarmConfig(seed=9, faults=faults)
        )
        swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(6):
            swarm.add_peer(config=fast_config())
        swarm.run(600.0)
        assert swarm.faults.stats["peer_crashes"] > 0
        assert len(swarm.result.departures) == swarm.faults.stats["peer_crashes"]


class TestHashFailureInjection:
    def test_injected_failures_reach_observer_and_reset_piece(self):
        faults = FaultConfig(hash_failure_rate=1.0)
        swarm = tiny_swarm(
            num_pieces=4, swarm_config=SwarmConfig(seed=8, faults=faults)
        )
        swarm.add_peer(config=fast_config(), is_seed=True)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(), observer=trace)
        swarm.run(120.0)
        assert len(trace.hash_failures) > 0
        assert trace.fault_counters["hash_failure_injected"] == len(
            trace.hash_failures
        )
        # Every completion is rejected, so the peer never becomes a seed.
        assert local.bitfield.count == 0
        assert not local.is_seed

    def test_partial_corruption_still_completes(self):
        faults = FaultConfig(hash_failure_rate=0.2)
        swarm = tiny_swarm(
            num_pieces=8, swarm_config=SwarmConfig(seed=8, faults=faults)
        )
        swarm.add_peer(config=fast_config(), is_seed=True)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(), observer=trace)
        swarm.run(600.0)
        assert local.is_seed
        assert swarm.faults.stats["hash_failures_injected"] > 0
        assert len(trace.hash_failures) == trace.fault_counters.get(
            "hash_failure_injected", 0
        )


@pytest.mark.chaos
class TestChaosResilience:
    """The ISSUE's acceptance scenario: a 30-peer swarm under 2% loss and
    a 60 s tracker outage still drains to all-seeds."""

    def build_chaos_swarm(self, seed=13):
        # The outage covers the joins, so every peer's ``started``
        # announce fails and must be retried with backoff.
        faults = FaultConfig(
            message_loss_rate=0.02,
            extra_jitter=0.1,
            hash_failure_rate=0.005,
            tracker_outages=((0.0, 60.0),),
        )
        swarm = tiny_swarm(
            num_pieces=16, swarm_config=SwarmConfig(seed=seed, faults=faults)
        )
        swarm.add_peer(config=fast_config(upload=8 * KIB), is_seed=True)
        for __ in range(29):
            swarm.add_peer(config=fast_config(upload=4 * KIB))
        return swarm

    def test_thirty_peer_swarm_reaches_all_seeds_under_faults(self):
        swarm = self.build_chaos_swarm()
        swarm.run(2000.0)
        seeds, leechers = swarm.seeds_and_leechers()
        assert leechers == 0, "stuck leechers under faults"
        assert len(swarm.result.completions) == 29
        stats = swarm.faults.stats
        assert stats["messages_dropped"] > 0
        assert stats["announce_retries"] > 0  # backoff visibly engaged
        assert swarm.tracker.failed_announce_count > 0

    def test_no_pending_event_explosion(self):
        """Fault machinery must not leak timers/events (no livelock)."""
        swarm = self.build_chaos_swarm(seed=14)
        swarm.run(2000.0)
        # Online peers each keep a few recurring timers; anything beyond
        # a small multiple of the population means a leak.
        assert swarm.simulator.pending_events < 20 * (len(swarm.peers) + 1)

    def test_crashes_do_not_deadlock_survivors(self):
        faults = FaultConfig(
            message_loss_rate=0.02,
            crash_probability=0.02,
            crash_interval=60.0,
            idle_timeout=60.0,
            sweep_interval=15.0,
        )
        swarm = tiny_swarm(
            num_pieces=16, swarm_config=SwarmConfig(seed=15, faults=faults)
        )
        swarm.add_peer(config=fast_config(upload=8 * KIB), is_seed=True)
        for __ in range(19):
            swarm.add_peer(config=fast_config(upload=4 * KIB))
        swarm.run(2500.0)
        # Every peer still online must have finished its download.
        for peer in swarm.peers.values():
            assert peer.is_seed, "stuck survivor %r" % peer
        # Crashes happened and their half-open links were reaped.
        assert swarm.faults.stats["peer_crashes"] > 0
        assert swarm.faults.stats["connections_reaped"] > 0
        for peer in swarm.peers.values():
            for connection in peer.connections.values():
                assert not connection.half_open
