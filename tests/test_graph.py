"""Tests for the swarm connectivity-graph analysis."""

import networkx as nx

from repro.analysis.graph import degree_histogram, graph_stats, swarm_graph
from repro.sim.config import KIB, PeerConfig

from tests.conftest import fast_config, tiny_swarm


class TestGraphStats:
    def test_empty_graph(self):
        stats = graph_stats(nx.Graph())
        assert stats.num_peers == 0
        assert stats.connected

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node("a")
        stats = graph_stats(graph)
        assert stats.num_peers == 1
        assert stats.diameter == 0
        assert stats.mean_degree == 0.0

    def test_path_graph(self):
        graph = nx.path_graph(5)
        stats = graph_stats(graph)
        assert stats.diameter == 4
        assert stats.connected
        assert stats.max_degree == 2
        assert stats.min_degree == 1

    def test_complete_graph(self):
        graph = nx.complete_graph(6)
        stats = graph_stats(graph)
        assert stats.diameter == 1
        assert stats.mean_degree == 5.0
        assert stats.average_path_length == 1.0

    def test_disconnected_graph_uses_largest_component(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (3, 4)])
        stats = graph_stats(graph)
        assert not stats.connected
        assert stats.diameter == 2  # the 0-1-2 component

    def test_degree_histogram(self):
        assert degree_histogram(nx.path_graph(3)) == [0, 2, 1]


class TestSwarmGraph:
    def test_reflects_connections(self):
        swarm = tiny_swarm(num_pieces=4)
        a = swarm.add_peer(config=fast_config(), is_seed=True)
        b = swarm.add_peer(config=fast_config())
        c = swarm.add_peer(config=fast_config())
        graph = swarm_graph(swarm)
        assert graph.number_of_nodes() == 3
        assert graph.has_edge(a.address, b.address)
        assert graph.has_edge(b.address, c.address)

    def test_small_swarm_is_fully_connected(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(8):
            swarm.add_peer(config=fast_config())
        stats = graph_stats(swarm_graph(swarm))
        assert stats.connected
        assert stats.diameter <= 2  # everyone fits in everyone's peer set

    def test_capped_peer_set_raises_diameter(self):
        def diameter_with(max_peer_set, max_initiated, min_peer_set):
            swarm = tiny_swarm(num_pieces=4, seed=17)
            config_kwargs = dict(
                max_peer_set=max_peer_set,
                max_initiated=max_initiated,
                min_peer_set=min_peer_set,
            )
            swarm.add_peer(
                config=PeerConfig(upload_capacity=4 * KIB, **config_kwargs),
                is_seed=True,
            )
            for __ in range(40):
                swarm.add_peer(
                    config=PeerConfig(upload_capacity=4 * KIB, **config_kwargs)
                )
            stats = graph_stats(swarm_graph(swarm))
            return stats

        big = diameter_with(80, 40, 20)
        small = diameter_with(4, 2, 2)
        assert big.mean_degree > small.mean_degree
        assert big.average_path_length <= small.average_path_length

    def test_departed_peers_not_in_graph(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        leecher.leave()
        graph = swarm_graph(swarm)
        assert leecher.address not in graph.nodes
