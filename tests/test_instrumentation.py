"""Tests for the instrumented local peer's trace recorder."""

import pytest

from repro.instrumentation import Instrumentation
from repro.instrumentation.logger import _IntervalTracker
from repro.sim.config import KIB

from tests.conftest import fast_config, tiny_swarm


def instrumented_swarm(num_pieces=8, leechers=3, seed=5, local_upload=8 * KIB):
    swarm = tiny_swarm(num_pieces=num_pieces, seed=seed)
    swarm.add_peer(config=fast_config(), is_seed=True)
    for __ in range(leechers):
        swarm.add_peer(config=fast_config(upload=2 * KIB))
    instrumentation = Instrumentation()
    local = swarm.add_peer(
        config=fast_config(upload=local_upload), observer=instrumentation
    )
    instrumentation.start_sampling()
    return swarm, local, instrumentation


class TestIntervalTracker:
    def test_basic_interval(self):
        tracker = _IntervalTracker()
        tracker.set_on(1.0)
        tracker.set_off(5.0)
        assert tracker.intervals == [(1.0, 5.0)]
        assert tracker.total() == 4.0

    def test_set_on_idempotent(self):
        tracker = _IntervalTracker()
        tracker.set_on(1.0)
        tracker.set_on(2.0)
        tracker.set_off(5.0)
        assert tracker.total() == 4.0

    def test_set_off_without_on(self):
        tracker = _IntervalTracker()
        tracker.set_off(5.0)
        assert tracker.intervals == []

    def test_clipping(self):
        tracker = _IntervalTracker()
        tracker.set_on(0.0)
        tracker.set_off(10.0)
        tracker.set_on(20.0)
        tracker.set_off(30.0)
        assert tracker.total_clipped(5.0, 25.0) == pytest.approx(10.0)
        assert tracker.total_clipped(50.0, 60.0) == 0.0

    def test_close_open_interval(self):
        tracker = _IntervalTracker()
        tracker.set_on(3.0)
        tracker.close(7.0)
        assert tracker.total() == 4.0


class TestTraceRecording:
    def test_records_every_remote(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(200)
        trace.finalize()
        assert len(trace.records) == 4  # seed + 3 leechers

    def test_presence_intervals_cover_run(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(200)
        trace.finalize()
        for record in trace.records.values():
            assert record.total_presence() > 0

    def test_piece_completions_count(self):
        swarm, local, trace = instrumented_swarm(num_pieces=8)
        swarm.run(400)
        assert len(trace.piece_completions) == 8
        assert trace.seed_state_at is not None
        completed_pieces = {piece for __, piece in trace.piece_completions}
        assert completed_pieces == set(range(8))

    def test_block_arrivals_sum_to_content(self):
        swarm, local, trace = instrumented_swarm(num_pieces=8)
        swarm.run(400)
        total = sum(length for *__, length in trace.block_arrivals)
        assert total == swarm.metainfo.geometry.total_size

    def test_seed_state_event(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(400)
        assert local.is_seed
        assert trace.seed_state_at == swarm.result.completions[local.address]

    def test_endgame_event(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(400)
        assert trace.endgame_at is not None
        assert trace.endgame_at <= trace.seed_state_at

    def test_snapshots_sampled(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(100)
        assert len(trace.snapshots) >= 10
        for snapshot in trace.snapshots:
            assert snapshot.min_copies <= snapshot.mean_copies <= snapshot.max_copies
            assert snapshot.peer_set_size >= 0

    def test_message_counts_positive(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(100)
        assert trace.messages_sent > 0
        assert trace.messages_received > 0

    def test_choke_rounds_recorded(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(100)
        assert len(trace.choke_rounds) >= 8  # one per ~10 s

    def test_unchoke_times_recorded(self):
        # 32 pieces so the download spans several choke rounds: the
        # 8-piece swarm can finish inside ~3 rounds, where remote
        # interest in the local peer may never overlap a round boundary.
        swarm, local, trace = instrumented_swarm(num_pieces=32)
        swarm.run(300)
        total_unchokes = sum(
            len(record.unchoke_times) for record in trace.records.values()
        )
        assert total_unchokes > 0

    def test_leecher_interval(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(400)
        start, end = trace.leecher_interval
        assert start == local.joined_at
        assert end == trace.seed_state_at
        seed_interval = trace.seed_interval
        assert seed_interval is not None
        assert seed_interval[0] == trace.seed_state_at

    def test_byte_split_by_local_state(self):
        swarm, local, trace = instrumented_swarm(num_pieces=16)
        swarm.run(800)
        trace.finalize()
        uploaded_ls = sum(r.uploaded_leecher_state for r in trace.records.values())
        uploaded_ss = sum(r.uploaded_seed_state for r in trace.records.values())
        assert uploaded_ls + uploaded_ss == pytest.approx(local.total_uploaded)
        downloaded = sum(
            r.downloaded_leecher_state + r.downloaded_seed_state
            for r in trace.records.values()
        )
        assert downloaded == pytest.approx(local.total_downloaded)

    def test_remote_seed_detection(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(400)
        trace.finalize()
        seed_records = [
            record for record in trace.records.values() if record.was_ever_seed()
        ]
        assert seed_records  # at least the initial seed

    def test_finalize_idempotent(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(100)
        trace.finalize()
        first = {
            address: record.total_presence()
            for address, record in trace.records.items()
        }
        trace.finalize()
        second = {
            address: record.total_presence()
            for address, record in trace.records.items()
        }
        assert first == second

    def test_rate_samples_disabled_by_default(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(100)
        assert trace.rate_samples == []

    def test_rate_samples_recorded_when_enabled(self):
        # Rate samples fire once per choke round per live link; 32
        # pieces keeps the link alive past the first round (a 4-piece
        # download can finish before any round runs).
        swarm = tiny_swarm(num_pieces=32)
        swarm.add_peer(config=fast_config(), is_seed=True)
        trace = Instrumentation(record_rates=True)
        swarm.add_peer(config=fast_config(), observer=trace)
        trace.start_sampling()
        swarm.run(60)
        assert len(trace.rate_samples) > 0
        now, address, down, up = trace.rate_samples[0]
        assert down >= 0 and up >= 0

    def test_client_id_captured(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(50)
        for record in trace.records.values():
            assert record.client_id == "M4-0-2"


class TestBitfieldSeedDetection:
    """Regression: spare padding bits of a raw BITFIELD must not count
    toward seed detection (piece counts not divisible by 8)."""

    def linked_pair(self, num_pieces=12):
        from repro.protocol.messages import Bitfield as BitfieldMessage  # noqa: F401

        swarm = tiny_swarm(num_pieces=num_pieces)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(), observer=trace)
        other = swarm.add_peer(config=fast_config())
        swarm.run(5.0)  # let the handshake + real (empty) bitfields flow
        connection = local.connections[other.address]
        return swarm, trace, connection, other

    def test_padded_leecher_bitfield_not_mistaken_for_seed(self):
        from repro.protocol.messages import Bitfield as BitfieldMessage

        swarm, trace, connection, other = self.linked_pair(num_pieces=12)
        record = trace.records[other.address]
        assert record.remote_seed_since is None
        # 8 of 12 pieces set, plus all 4 spare padding bits set: 12 one
        # bits in total, but only 8 real pieces — still a leecher.
        padded = BitfieldMessage(bits=bytes([0xFF, 0x0F]))
        trace.on_message_received(swarm.simulator.now, connection, padded)
        assert record.remote_seed_since is None

    def test_true_seed_bitfield_still_detected(self):
        from repro.protocol.messages import Bitfield as BitfieldMessage

        swarm, trace, connection, other = self.linked_pair(num_pieces=12)
        record = trace.records[other.address]
        complete = BitfieldMessage(bits=bytes([0xFF, 0xF0]))
        trace.on_message_received(swarm.simulator.now, connection, complete)
        assert record.remote_seed_since == swarm.simulator.now

    def test_multiple_of_eight_unaffected(self):
        from repro.protocol.messages import Bitfield as BitfieldMessage

        swarm, trace, connection, other = self.linked_pair(num_pieces=8)
        record = trace.records[other.address]
        trace.on_message_received(
            swarm.simulator.now, connection, BitfieldMessage(bits=bytes([0xFF]))
        )
        assert record.remote_seed_since == swarm.simulator.now


class TestFlushBytesAcrossReconnect:
    def test_no_double_count_across_connection_generations(self):
        """Byte totals must track each connection generation separately:
        a disconnect/reconnect of the same address must not re-count the
        first generation's bytes."""
        swarm = tiny_swarm(num_pieces=8)
        seeder = swarm.add_peer(config=fast_config(upload=2 * KIB), is_seed=True)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(upload=2 * KIB), observer=trace)
        swarm.run(15.0)  # partial download over generation 1
        first = local.connections[seeder.address]
        gen1_down = first.downloaded.total
        assert 0 < gen1_down < swarm.metainfo.geometry.total_size
        seeder.leave()  # closes the link -> generation 1 is flushed
        assert seeder.address not in local.connections
        seeder.join()  # same address, fresh Connection objects
        swarm.run(600.0)
        assert local.is_seed
        trace.finalize()
        record = trace.records[seeder.address]
        recorded = (
            record.downloaded_leecher_state + record.downloaded_seed_state
        )
        # The peer-level counter accumulates across both generations.
        assert recorded == pytest.approx(local.total_downloaded)
        assert recorded >= swarm.metainfo.geometry.total_size

    def test_finalize_idempotent_with_open_connections(self):
        swarm, local, trace = instrumented_swarm()
        swarm.run(6.0)
        assert local.connections  # still mid-download, links open
        trace.finalize()
        totals = {
            address: (
                record.downloaded_leecher_state,
                record.uploaded_leecher_state,
                record.presence.total(),
            )
            for address, record in trace.records.items()
        }
        trace.finalize()  # same timestamp: early return
        trace.finalize(now=swarm.simulator.now + 10.0)  # states already cleared
        after = {
            address: (
                record.downloaded_leecher_state,
                record.uploaded_leecher_state,
                record.presence.total(),
            )
            for address, record in trace.records.items()
        }
        assert after == totals
