"""Property-based tests for the instrumentation bookkeeping.

The `_IntervalTracker` is the foundation every presence/interest figure
stands on, so its algebra is checked against randomly generated on/off
signals with Hypothesis:

* **partition sum** — clipping to the cells of any partition of the
  observation window and summing recovers ``total()``;
* **idempotence** — redundant ``set_on``/``set_off``/``close`` calls
  are no-ops;
* **clipping** — ``total_clipped`` is non-negative, monotone in the
  window, and never exceeds ``total()``.

Plus an integration test for the offline-gap snapshot marker: a local
peer that leaves mid-run keeps sampling (explicitly marked offline)
instead of silently dropping samples, and the analysis series skip the
marked gaps.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.analysis.peerset import peer_set_series
from repro.analysis.replication import replication_series
from repro.instrumentation import Instrumentation
from repro.instrumentation.logger import _IntervalTracker
from repro.sim.config import KIB, SwarmConfig

from tests.conftest import fast_config, tiny_swarm

# Strictly increasing event times; alternate on/off from t=times[0].
event_times = st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
    unique=True,
).map(sorted)


def tracker_from(times, close_at=None):
    tracker = _IntervalTracker()
    for index, time in enumerate(times):
        if index % 2 == 0:
            tracker.set_on(time)
        else:
            tracker.set_off(time)
    if close_at is not None:
        tracker.close(max(close_at, times[-1]))
    return tracker


@given(times=event_times, cells=st.integers(min_value=1, max_value=12))
@settings(max_examples=200, deadline=None)
def test_partition_sum_recovers_total(times, cells):
    tracker = tracker_from(times, close_at=times[-1] + 1.0)
    lo, hi = 0.0, times[-1] + 2.0
    edges = [lo + (hi - lo) * i / cells for i in range(cells + 1)]
    partitioned = sum(
        tracker.total_clipped(edges[i], edges[i + 1]) for i in range(cells)
    )
    assert partitioned == pytest.approx(tracker.total(), abs=1e-6)


@given(times=event_times)
@settings(max_examples=200, deadline=None)
def test_redundant_transitions_are_idempotent(times):
    tracker = tracker_from(times)
    reference = tracker_from(times)
    # A second set_on while open and a set_off while closed change nothing.
    probe = times[-1] + 5.0
    if tracker.open_since is not None:
        tracker.set_on(probe)
    else:
        tracker.set_off(probe)
    assert tracker.intervals == reference.intervals
    assert tracker.open_since == reference.open_since
    # close() is set_off: closing twice equals closing once.
    tracker.close(probe + 1.0)
    snapshot = list(tracker.intervals)
    tracker.close(probe + 2.0)
    assert tracker.intervals == snapshot
    assert tracker.open_since is None


@given(
    times=event_times,
    window=st.tuples(
        st.floats(min_value=-10.0, max_value=1e5, allow_nan=False),
        st.floats(min_value=-10.0, max_value=1e5, allow_nan=False),
    ),
)
@settings(max_examples=200, deadline=None)
def test_clipping_is_bounded_and_non_negative(times, window):
    tracker = tracker_from(times, close_at=times[-1])
    lo, hi = min(window), max(window)
    clipped = tracker.total_clipped(lo, hi)
    assert clipped >= 0.0
    assert clipped <= tracker.total() + 1e-9
    # A window covering every interval recovers the full total, and an
    # inverted or empty window contributes nothing.
    assert tracker.total_clipped(-1.0, times[-1] + 1.0) == pytest.approx(
        tracker.total()
    )
    assert tracker.total_clipped(hi, lo) == 0.0


def test_open_interval_is_invisible_until_closed():
    tracker = _IntervalTracker()
    tracker.set_on(10.0)
    assert tracker.total() == 0.0
    assert tracker.total_clipped(0.0, 100.0) == 0.0
    tracker.close(30.0)
    assert tracker.total() == pytest.approx(20.0)


# ---------------------------------------------------------------------------
# offline snapshot gap markers
# ---------------------------------------------------------------------------


def test_offline_snapshots_are_marked_not_dropped():
    swarm = tiny_swarm(
        num_pieces=12,
        seed=13,
        swarm_config=SwarmConfig(seed=13, snapshot_interval=5.0),
    )
    swarm.add_peer(config=fast_config(), is_seed=True)
    instrumentation = Instrumentation()
    local = swarm.add_peer(
        config=fast_config(upload=4 * KIB), observer=instrumentation
    )
    instrumentation.start_sampling()
    for __ in range(3):
        swarm.add_peer(config=fast_config(upload=2 * KIB))
    swarm.run(60.0)
    local.leave()
    swarm.run(120.0)

    online = [s for s in instrumentation.snapshots if not s.offline]
    offline = [s for s in instrumentation.snapshots if s.offline]
    # The sampling timer kept firing through the outage: explicit gap
    # markers instead of silently missing samples.
    assert offline, "expected offline gap markers while the peer was away"
    assert all(s.time >= 60.0 for s in offline)
    assert all(s.peer_set_size == 0 for s in offline)
    # Consecutive samples stay one interval apart across the transition —
    # nothing was dropped.
    all_times = [s.time for s in instrumentation.snapshots]
    assert all_times == sorted(all_times)
    deltas = [b - a for a, b in zip(all_times, all_times[1:])]
    assert max(deltas) == pytest.approx(5.0)

    # Analysis series skip the marked gaps rather than plotting phantom
    # zero-sized peer sets.
    series = replication_series(instrumentation)
    assert series.times == [s.time for s in online]
    times, sizes = peer_set_series(instrumentation)
    assert times == [s.time for s in online]
    assert all(size >= 0 for size in sizes)


def test_crash_also_yields_offline_markers():
    swarm = tiny_swarm(
        num_pieces=12,
        seed=17,
        swarm_config=SwarmConfig(seed=17, snapshot_interval=5.0),
    )
    swarm.add_peer(config=fast_config(), is_seed=True)
    instrumentation = Instrumentation()
    local = swarm.add_peer(
        config=fast_config(upload=4 * KIB), observer=instrumentation
    )
    instrumentation.start_sampling()
    swarm.add_peer(config=fast_config(upload=2 * KIB))
    swarm.run(40.0)
    local.crash()
    swarm.run(80.0)
    assert any(s.offline for s in instrumentation.snapshots)
    assert not any(
        s.offline for s in instrumentation.snapshots if s.time < 40.0
    )
