"""Cross-cutting simulator invariants, checked on randomised small swarms.

These are the conservation laws the fluid model and the protocol layer
must respect regardless of topology, capacities or churn:

* bytes are conserved: total uploaded == total downloaded;
* the local availability accounting equals the sum of the connected
  remotes' bitfields at every instant;
* nobody downloads more than the content size per completion;
* the active peer set never exceeds the configured unchoke slots;
* completed peers hold hash-consistent content (when verification is on).
"""

from random import Random

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm


def build_random_swarm(seed, num_pieces, num_leechers, verify=False):
    metainfo = make_metainfo(
        "invariants-%d" % seed,
        num_pieces=num_pieces,
        piece_size=4 * KIB,
        block_size=1 * KIB,
    )
    swarm = Swarm(
        metainfo, SwarmConfig(seed=seed, verify_piece_hashes=verify)
    )
    rng = Random(seed)
    swarm.add_peer(
        config=PeerConfig(upload_capacity=rng.choice([2, 4, 8]) * KIB),
        is_seed=True,
    )
    for __ in range(num_leechers):
        swarm.add_peer(
            config=PeerConfig(
                upload_capacity=rng.choice([0.5, 1, 2, 4]) * KIB,
                download_capacity=rng.choice([None, 8 * KIB]),
            )
        )
    return swarm


swarm_params = st.tuples(
    st.integers(0, 10_000),  # seed
    st.integers(2, 12),      # pieces
    st.integers(1, 6),       # leechers
)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(swarm_params)
def test_bytes_conserved(params):
    seed, num_pieces, num_leechers = params
    swarm = build_random_swarm(seed, num_pieces, num_leechers)
    swarm.run(200)
    uploaded = sum(peer.total_uploaded for peer in swarm.peers.values())
    downloaded = sum(peer.total_downloaded for peer in swarm.peers.values())
    assert uploaded == pytest.approx(downloaded)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(swarm_params)
# Pinned: the fused HAVE fan-out skips the ``have_set`` mirror on
# matrix-attached receivers, so ``have_indices`` must read the bitmap —
# this example caught it returning the stale mirror instead.
@example((1, 8, 6))
def test_availability_matches_bitfields(params):
    seed, num_pieces, num_leechers = params
    swarm = build_random_swarm(seed, num_pieces, num_leechers)
    swarm.run(73)  # an arbitrary mid-download instant
    for peer in swarm.peers.values():
        expected = [0] * num_pieces
        for connection in peer.connections.values():
            for piece in connection.remote_bitfield.have_indices():
                expected[piece] += 1
        assert list(peer.picker.availability) == expected


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(swarm_params)
def test_download_bounded_by_content(params):
    seed, num_pieces, num_leechers = params
    swarm = build_random_swarm(seed, num_pieces, num_leechers)
    swarm.run(400)
    content = swarm.metainfo.geometry.total_size
    for peer in swarm.peers.values():
        # End-game duplicates may deliver a few extra blocks, never more
        # than a handful of block sizes beyond the content.
        assert peer.total_downloaded <= content + 16 * KIB


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(swarm_params)
def test_unchoke_slots_never_exceeded(params):
    seed, num_pieces, num_leechers = params
    swarm = build_random_swarm(seed, num_pieces, num_leechers)
    violations = []

    def probe(now):
        for peer in swarm.peers.values():
            active = sum(
                1
                for connection in peer.connections.values()
                if not connection.am_choking and connection.peer_interested
            )
            if active > peer.config.unchoke_slots:
                violations.append((now, peer.address, active))

    swarm.on_tick(probe)
    swarm.run(150)
    assert not violations


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_verified_download_is_hash_consistent(seed):
    swarm = build_random_swarm(seed, num_pieces=4, num_leechers=2, verify=True)
    swarm.run(400)
    for peer in swarm.peers.values():
        if peer.is_seed:
            # Every completed peer passed SHA-1 on every piece (the
            # verify path raises/fails the piece otherwise).
            assert peer.bitfield.is_complete()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(swarm_params, st.integers(10, 200))
def test_global_counts_never_negative(params, horizon):
    seed, num_pieces, num_leechers = params
    swarm = build_random_swarm(seed, num_pieces, num_leechers)
    swarm.run(horizon)
    assert all(count >= 0 for count in swarm.global_counts)
    assert all(
        count <= len(swarm.peers) for count in swarm.global_counts
    )
