"""Tests for the optional control-message latency."""

from repro.protocol.messages import Have
from repro.sim.config import SwarmConfig

from tests.conftest import fast_config, tiny_swarm


def latency_swarm(latency, num_pieces=8, seed=7):
    config = SwarmConfig(seed=seed, message_latency=latency)
    return tiny_swarm(num_pieces=num_pieces, swarm_config=config, seed=seed)


class TestMessageLatency:
    def test_delivery_is_delayed(self):
        swarm = latency_swarm(0.5)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        # Bitfields were sent at t=0 but have not arrived yet.
        conn = leecher.connections[seed.address]
        assert conn.remote_bitfield.count == 0
        swarm.run(1.0)
        assert conn.remote_bitfield.is_complete()

    def test_download_still_completes(self):
        swarm = latency_swarm(0.2)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(400)
        assert leecher.bitfield.is_complete()

    def test_fifo_order_preserved(self):
        swarm = latency_swarm(0.5, num_pieces=8)
        a = swarm.add_peer(config=fast_config(), is_seed=True)
        b = swarm.add_peer(config=fast_config())
        received = []
        original = b._receive

        def spy(connection, message):
            if isinstance(message, Have):
                received.append(message.piece)
            return original(connection, message)

        b._receive = spy  # type: ignore[assignment]
        conn = a.connections[b.address]
        for piece in range(8):
            a._send(conn, Have(piece=piece))
        swarm.run(1.0)
        assert received == list(range(8))

    def test_latency_slows_completion(self):
        def completion(latency):
            swarm = latency_swarm(latency, num_pieces=16, seed=23)
            swarm.add_peer(config=fast_config(), is_seed=True)
            leecher = swarm.add_peer(config=fast_config())
            result = swarm.run(900)
            return result.completions[leecher.address]

        assert completion(0.0) <= completion(1.0)

    def test_messages_to_closed_link_dropped(self):
        swarm = latency_swarm(1.0)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        conn = seed.connections[leecher.address]
        seed._send(conn, Have(piece=0))
        leecher.leave()  # link closes before delivery
        swarm.run(2.0)  # must not raise or resurrect the connection
        assert leecher.address not in seed.connections


class TestConnectLatency:
    def test_handshake_delayed(self):
        from repro.sim.config import SwarmConfig
        config = SwarmConfig(seed=7, connect_latency=2.0)
        swarm = tiny_swarm(num_pieces=4, swarm_config=config)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        # The connection attempt is in flight, not yet established.
        assert seed.address not in leecher.connections
        swarm.run(3.0)
        assert seed.address in leecher.connections

    def test_download_completes_with_connect_latency(self):
        from repro.sim.config import SwarmConfig
        config = SwarmConfig(seed=7, connect_latency=1.0)
        swarm = tiny_swarm(num_pieces=8, swarm_config=config)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(400)
        assert leecher.bitfield.is_complete()

    def test_departed_initiator_aborts_pending_connect(self):
        from repro.sim.config import SwarmConfig
        config = SwarmConfig(seed=7, connect_latency=5.0)
        swarm = tiny_swarm(num_pieces=4, swarm_config=config)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        leecher.leave()
        swarm.run(10.0)
        assert leecher.address not in seed.connections
