"""Mega-swarm smoke: a 1000-leecher swarm on the default fast engine.

Marked ``slow``: CI runs it in a dedicated job with a hard timeout so a
hang at four-digit scale (a stuck timer-wheel bucket, a fused fan-out
loop that stops terminating) fails the build instead of burning the
runner.  The simulated window is short — arrivals are still trickling
in when it closes — because the point is that the engine *moves* at
this scale and that both event-queue implementations agree, not that
the swarm finishes.
"""

import hashlib

import pytest

from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

LEECHERS = 1000
PIECES = 2048
SIM_SECONDS = 40.0


def run_mega_swarm(event_queue: str):
    from random import Random

    metainfo = make_metainfo(
        "mega-smoke",
        num_pieces=PIECES,
        piece_size=16 * KIB,
        block_size=16 * KIB,
    )
    swarm = Swarm(
        metainfo,
        SwarmConfig(seed=42, extra={"event_queue": event_queue}),
    )
    rng = Random(42)

    def peer_config() -> PeerConfig:
        return PeerConfig(
            upload_capacity=rng.choice([32, 64, 96, 128]) * KIB,
            use_rarity_index=True,
        )

    swarm.add_peer(config=peer_config(), is_seed=True)
    for _ in range(LEECHERS):
        swarm.schedule_arrival(rng.uniform(0.0, 60.0), config=peer_config())
    result = swarm.run(SIM_SECONDS)
    digest = hashlib.sha256()
    for address in sorted(swarm.peers):
        have = sorted(swarm.peers[address].bitfield.have_set)
        digest.update(repr((address, have)).encode())
    return result, len(swarm.peers), digest.hexdigest()


@pytest.mark.slow
def test_thousand_peer_swarm_moves_data_and_queues_agree():
    heap_result, heap_peers, heap_digest = run_mega_swarm("heap")
    # Two thirds of the arrival window has elapsed: most of the swarm
    # must be present and real payload must be flowing.
    assert heap_peers > LEECHERS // 2
    assert heap_result.bytes_moved > 100 * 16 * KIB

    wheel_result, wheel_peers, wheel_digest = run_mega_swarm("wheel")
    assert wheel_peers == heap_peers
    assert wheel_result.bytes_moved == heap_result.bytes_moved
    assert wheel_digest == heap_digest
