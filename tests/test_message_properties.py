"""Round-trip property tests for every peer-wire message dataclass.

``encode`` → ``decode_message`` → equality for the full message
catalogue, including the edge payloads the live layer actually produces
(empty bitfields from fresh leechers, zero-length PIECE blocks, maximal
piece indices) — plus the regression guard that ``Handshake.decode``
rejects short buffers instead of silently truncating.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol.messages import (
    HANDSHAKE_LENGTH,
    Bitfield,
    Cancel,
    Choke,
    Handshake,
    Have,
    Interested,
    KeepAlive,
    MessageError,
    NotInterested,
    Piece,
    Request,
    Unchoke,
    decode_message,
)

MAX_U32 = 2**32 - 1
U32 = st.integers(min_value=0, max_value=MAX_U32)


def roundtrip(message):
    return decode_message(message.encode())


class TestRoundTripProperties:
    @pytest.mark.parametrize(
        "message",
        [Choke(), Unchoke(), Interested(), NotInterested(), KeepAlive()],
    )
    def test_payloadless_messages(self, message):
        assert roundtrip(message) == message

    @settings(max_examples=100, deadline=None)
    @given(piece=U32)
    def test_have(self, piece):
        assert roundtrip(Have(piece=piece)) == Have(piece=piece)

    @settings(max_examples=100, deadline=None)
    @given(bits=st.binary(max_size=256))
    def test_bitfield(self, bits):
        assert roundtrip(Bitfield(bits=bits)) == Bitfield(bits=bits)

    @settings(max_examples=100, deadline=None)
    @given(piece=U32, offset=U32, length=U32)
    def test_request(self, piece, offset, length):
        message = Request(piece=piece, offset=offset, length=length)
        assert roundtrip(message) == message

    @settings(max_examples=100, deadline=None)
    @given(piece=U32, offset=U32, length=U32)
    def test_cancel(self, piece, offset, length):
        message = Cancel(piece=piece, offset=offset, length=length)
        assert roundtrip(message) == message

    @settings(max_examples=100, deadline=None)
    @given(piece=U32, offset=U32, data=st.binary(max_size=512))
    def test_piece(self, piece, offset, data):
        message = Piece(piece=piece, offset=offset, data=data)
        assert roundtrip(message) == message

    @settings(max_examples=100, deadline=None)
    @given(
        info_hash=st.binary(min_size=20, max_size=20),
        peer_id=st.binary(min_size=20, max_size=20),
        reserved=st.binary(min_size=8, max_size=8),
    )
    def test_handshake(self, info_hash, peer_id, reserved):
        shake = Handshake(info_hash=info_hash, peer_id=peer_id, reserved=reserved)
        assert Handshake.decode(shake.encode()) == shake


class TestEdgePayloads:
    def test_empty_bitfield(self):
        assert roundtrip(Bitfield(bits=b"")) == Bitfield(bits=b"")

    def test_zero_length_piece_block(self):
        message = Piece(piece=0, offset=0, data=b"")
        assert roundtrip(message) == message
        assert message.wire_length == 4 + 1 + 8

    def test_max_piece_index(self):
        assert roundtrip(Have(piece=MAX_U32)) == Have(piece=MAX_U32)
        message = Request(piece=MAX_U32, offset=MAX_U32, length=MAX_U32)
        assert roundtrip(message) == message

    @settings(max_examples=100, deadline=None)
    @given(length=st.integers(min_value=0, max_value=HANDSHAKE_LENGTH - 1))
    def test_handshake_rejects_short_buffers(self, length):
        """Regression: short handshakes must raise, never truncate-decode."""
        wire = Handshake(info_hash=b"h" * 20, peer_id=b"p" * 20).encode()
        with pytest.raises(MessageError):
            Handshake.decode(wire[:length])

    def test_handshake_rejects_long_buffers(self):
        wire = Handshake(info_hash=b"h" * 20, peer_id=b"p" * 20).encode()
        with pytest.raises(MessageError):
            Handshake.decode(wire + b"\x00")
