"""Unit and property tests for peer-wire message encoding."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.protocol.messages import (
    Bitfield,
    Cancel,
    Choke,
    Handshake,
    Have,
    Interested,
    KeepAlive,
    MessageError,
    NotInterested,
    Piece,
    Request,
    Unchoke,
    decode_message,
)


class TestHandshake:
    def test_roundtrip(self):
        hs = Handshake(info_hash=b"h" * 20, peer_id=b"p" * 20)
        assert Handshake.decode(hs.encode()) == hs

    def test_length(self):
        hs = Handshake(info_hash=b"h" * 20, peer_id=b"p" * 20)
        assert len(hs.encode()) == 68

    def test_validation(self):
        with pytest.raises(MessageError):
            Handshake(info_hash=b"short", peer_id=b"p" * 20)
        with pytest.raises(MessageError):
            Handshake(info_hash=b"h" * 20, peer_id=b"short")
        with pytest.raises(MessageError):
            Handshake(info_hash=b"h" * 20, peer_id=b"p" * 20, reserved=b"x")

    def test_bad_protocol_string(self):
        hs = Handshake(info_hash=b"h" * 20, peer_id=b"p" * 20)
        data = bytearray(hs.encode())
        data[1] ^= 0xFF
        with pytest.raises(MessageError):
            Handshake.decode(bytes(data))

    def test_wrong_length(self):
        with pytest.raises(MessageError):
            Handshake.decode(b"\x13BitTorrent protocol")


class TestStateMessages:
    @pytest.mark.parametrize(
        "message,message_id",
        [(Choke(), 0), (Unchoke(), 1), (Interested(), 2), (NotInterested(), 3)],
    )
    def test_roundtrip(self, message, message_id):
        wire = message.encode()
        assert wire == struct.pack(">IB", 1, message_id)
        assert decode_message(wire) == message
        assert message.wire_length == len(wire)

    def test_keepalive(self):
        wire = KeepAlive().encode()
        assert wire == b"\x00\x00\x00\x00"
        assert decode_message(wire) == KeepAlive()
        assert KeepAlive().wire_length == 4

    def test_state_message_with_payload_rejected(self):
        wire = struct.pack(">IB", 2, 0) + b"x"
        with pytest.raises(MessageError):
            decode_message(wire)


class TestPayloadMessages:
    def test_have_roundtrip(self):
        message = Have(piece=1234)
        assert decode_message(message.encode()) == message

    def test_have_bad_length(self):
        wire = struct.pack(">IB", 3, 4) + b"ab"
        with pytest.raises(MessageError):
            decode_message(wire)

    def test_bitfield_roundtrip(self):
        message = Bitfield(bits=b"\xf0\x0f")
        decoded = decode_message(message.encode())
        assert decoded == message

    def test_request_roundtrip(self):
        message = Request(piece=3, offset=16384, length=16384)
        assert decode_message(message.encode()) == message

    def test_cancel_roundtrip(self):
        message = Cancel(piece=3, offset=16384, length=16384)
        decoded = decode_message(message.encode())
        assert decoded == message
        assert isinstance(decoded, Cancel)

    def test_request_bad_length(self):
        wire = struct.pack(">IB", 5, 6) + b"abcd"
        with pytest.raises(MessageError):
            decode_message(wire)

    def test_piece_roundtrip(self):
        message = Piece(piece=2, offset=32768, data=b"payload")
        decoded = decode_message(message.encode())
        assert decoded == message
        assert decoded.data == b"payload"

    def test_piece_wire_length_includes_data(self):
        message = Piece(piece=0, offset=0, data=b"x" * 100)
        assert message.wire_length == 4 + 1 + 8 + 100

    def test_piece_too_short(self):
        wire = struct.pack(">IB", 5, 7) + b"abcd"
        with pytest.raises(MessageError):
            decode_message(wire)


class TestDecodeErrors:
    def test_too_short(self):
        with pytest.raises(MessageError):
            decode_message(b"\x00")

    def test_length_mismatch(self):
        with pytest.raises(MessageError):
            decode_message(struct.pack(">IB", 10, 0))

    def test_unknown_id(self):
        wire = struct.pack(">IB", 1, 99)
        with pytest.raises(MessageError):
            decode_message(wire)


@given(st.integers(0, 2**32 - 1))
def test_property_have_roundtrip(piece):
    assert decode_message(Have(piece=piece).encode()) == Have(piece=piece)


@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 2**32 - 1),
    st.integers(0, 2**32 - 1),
)
def test_property_request_roundtrip(piece, offset, length):
    message = Request(piece=piece, offset=offset, length=length)
    assert decode_message(message.encode()) == message


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1), st.binary(max_size=256))
def test_property_piece_roundtrip(piece, offset, data):
    message = Piece(piece=piece, offset=offset, data=data)
    assert decode_message(message.encode()) == message


@given(st.binary(max_size=64))
def test_property_bitfield_roundtrip(bits):
    message = Bitfield(bits=bits)
    assert decode_message(message.encode()) == message
