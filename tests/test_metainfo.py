"""Unit and property tests for torrent metainfo and piece geometry."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.protocol.metainfo import (
    BlockRef,
    Metainfo,
    PieceGeometry,
    make_metainfo,
)


class TestPieceGeometry:
    def test_even_split(self):
        geometry = PieceGeometry(1024, piece_size=256, block_size=64)
        assert geometry.num_pieces == 4
        assert geometry.piece_length(0) == 256
        assert geometry.piece_length(3) == 256
        assert geometry.blocks_in_piece(0) == 4

    def test_short_last_piece(self):
        geometry = PieceGeometry(1000, piece_size=256, block_size=64)
        assert geometry.num_pieces == 4
        assert geometry.piece_length(3) == 1000 - 3 * 256

    def test_short_last_block(self):
        geometry = PieceGeometry(100, piece_size=100, block_size=64)
        blocks = geometry.blocks(0)
        assert [b.length for b in blocks] == [64, 36]
        assert blocks[1].offset == 64

    def test_blocks_cover_piece_exactly(self):
        geometry = PieceGeometry(1000, piece_size=256, block_size=60)
        for piece in range(geometry.num_pieces):
            blocks = geometry.blocks(piece)
            assert sum(b.length for b in blocks) == geometry.piece_length(piece)
            assert blocks[0].offset == 0

    def test_block_ref(self):
        geometry = PieceGeometry(1024, piece_size=256, block_size=64)
        ref = geometry.block_ref(1, 2)
        assert ref == BlockRef(1, 128, 64)

    def test_block_ref_out_of_range(self):
        geometry = PieceGeometry(1024, piece_size=256, block_size=64)
        with pytest.raises(IndexError):
            geometry.block_ref(0, 4)

    def test_piece_out_of_range(self):
        geometry = PieceGeometry(1024, piece_size=256, block_size=64)
        with pytest.raises(IndexError):
            geometry.piece_length(4)

    def test_total_blocks(self):
        geometry = PieceGeometry(1000, piece_size=256, block_size=64)
        assert geometry.total_blocks == sum(
            geometry.blocks_in_piece(p) for p in range(4)
        )

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            PieceGeometry(0)
        with pytest.raises(ValueError):
            PieceGeometry(100, piece_size=0)
        with pytest.raises(ValueError):
            PieceGeometry(100, piece_size=16, block_size=32)

    def test_block_ref_validation(self):
        with pytest.raises(ValueError):
            BlockRef(-1, 0, 1)
        with pytest.raises(ValueError):
            BlockRef(0, 0, 0)


class TestMetainfo:
    def test_synthetic_hashes_verify(self):
        meta = Metainfo.synthetic("t", 1000, piece_size=256, block_size=64)
        for piece in range(meta.geometry.num_pieces):
            assert meta.verify_piece(piece, meta.piece_payload(piece))

    def test_corrupt_piece_fails(self):
        meta = Metainfo.synthetic("t", 1000, piece_size=256, block_size=64)
        data = bytearray(meta.piece_payload(0))
        data[0] ^= 0xFF
        assert not meta.verify_piece(0, bytes(data))

    def test_wrong_length_fails(self):
        meta = Metainfo.synthetic("t", 1000, piece_size=256, block_size=64)
        assert not meta.verify_piece(0, b"short")

    def test_payload_is_deterministic(self):
        a = Metainfo.synthetic("t", 512, piece_size=256, block_size=64)
        b = Metainfo.synthetic("t", 512, piece_size=256, block_size=64)
        assert a.piece_payload(1) == b.piece_payload(1)
        assert a.info_hash == b.info_hash

    def test_different_names_different_content(self):
        a = Metainfo.synthetic("a", 512, piece_size=256, block_size=64)
        b = Metainfo.synthetic("b", 512, piece_size=256, block_size=64)
        assert a.piece_payload(0) != b.piece_payload(0)
        assert a.info_hash != b.info_hash

    def test_torrent_file_roundtrip(self):
        meta = Metainfo.synthetic("movie", 5000, piece_size=1024, block_size=256)
        data = meta.to_torrent_file()
        recovered = Metainfo.from_torrent_file(data, block_size=256)
        assert recovered.name == "movie"
        assert recovered.info_hash == meta.info_hash
        assert recovered.piece_hashes == meta.piece_hashes
        assert recovered.geometry.total_size == 5000
        assert recovered.announce == meta.announce

    def test_info_hash_is_sha1_of_info_dict(self):
        meta = Metainfo.synthetic("x", 300, piece_size=256, block_size=64)
        assert len(meta.info_hash) == 20
        from repro.protocol.bencode import bencode

        assert meta.info_hash == hashlib.sha1(bencode(meta._info_dict())).digest()

    def test_hash_count_must_match(self):
        geometry = PieceGeometry(512, piece_size=256, block_size=64)
        with pytest.raises(ValueError):
            Metainfo("t", geometry, [b"\x00" * 20])

    def test_hash_length_validated(self):
        geometry = PieceGeometry(256, piece_size=256, block_size=64)
        with pytest.raises(ValueError):
            Metainfo("t", geometry, [b"\x00" * 19])

    def test_malformed_torrent_file(self):
        with pytest.raises(ValueError):
            Metainfo.from_torrent_file(b"not bencoded")
        with pytest.raises(ValueError):
            Metainfo.from_torrent_file(b"de")

    def test_make_metainfo(self):
        meta = make_metainfo("t", num_pieces=7, piece_size=128, block_size=32)
        assert meta.geometry.num_pieces == 7
        assert meta.geometry.total_size == 7 * 128

    def test_make_metainfo_short_last_piece(self):
        meta = make_metainfo(
            "t", num_pieces=3, piece_size=128, block_size=32, last_piece_size=40
        )
        assert meta.geometry.num_pieces == 3
        assert meta.geometry.piece_length(2) == 40

    def test_make_metainfo_validation(self):
        with pytest.raises(ValueError):
            make_metainfo("t", num_pieces=0)
        with pytest.raises(ValueError):
            make_metainfo("t", num_pieces=2, piece_size=64, last_piece_size=65)


@given(
    total=st.integers(1, 10_000),
    piece=st.integers(1, 2_048),
    block=st.integers(1, 2_048),
)
def test_property_geometry_partition(total, piece, block):
    """Pieces partition the content; blocks partition each piece."""
    if block > piece:
        piece, block = block, piece
    geometry = PieceGeometry(total, piece_size=piece, block_size=block)
    assert (
        sum(geometry.piece_length(p) for p in range(geometry.num_pieces)) == total
    )
    for p in range(geometry.num_pieces):
        blocks = geometry.blocks(p)
        assert sum(b.length for b in blocks) == geometry.piece_length(p)
        offsets = [b.offset for b in blocks]
        assert offsets == sorted(offsets)
        # Contiguity: each block starts where the previous one ends.
        for first, second in zip(blocks, blocks[1:]):
            assert second.offset == first.offset + first.length
