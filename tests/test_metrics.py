"""Unit tests for the metrics registry and the engine profiler.

Covers each primitive (counter, gauge, histogram, windowed rate), the
registry's get-or-create and namespacing behaviour, the compatibility
views the classic ``Instrumentation`` exposes on top of the registry,
and the engine profiler's no-perturbation guarantee.
"""

import json

import pytest

from repro.instrumentation import EngineProfiler, Instrumentation, MetricsRegistry
from repro.instrumentation.metrics import (
    Counter,
    Gauge,
    Histogram,
    WindowedRate,
)
from repro.sim.config import KIB, SwarmConfig
from repro.sim.engine import Simulator

from tests.conftest import fast_config, tiny_swarm
from tests.test_faults import TraceFingerprint


def test_counter_increments_and_rejects_negative():
    counter = Counter("messages")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)
    counter.reset_to(7.0)
    assert counter.value == 7.0


def test_gauge_tracks_high_water_mark():
    gauge = Gauge("queue")
    gauge.set(3.0)
    gauge.set(9.0)
    gauge.set(4.0)
    assert gauge.value == 4.0
    assert gauge.max_value == 9.0


def test_histogram_bucketing_and_stats():
    histogram = Histogram("lat", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        histogram.observe(value)
    assert histogram.counts == [1, 1, 1, 1]  # one per bucket + overflow
    assert histogram.total == 4
    assert histogram.mean() == pytest.approx((0.5 + 5.0 + 50.0 + 500.0) / 4)
    assert histogram.min == 0.5 and histogram.max == 500.0
    assert histogram.quantile(0.25) == 1.0
    assert histogram.quantile(1.0) is None  # overflow bucket
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())


def test_windowed_rate_evicts_old_samples():
    rate = WindowedRate("blocks", window=10.0)
    rate.record(0.0)
    rate.record(5.0)
    rate.record(9.0, occurrences=2)
    assert rate.count == 4
    # The window is half-open (now - window, now]: the t=0 sample has
    # just aged out at t=10.
    assert rate.rate(10.0) == pytest.approx(3 / 10.0)
    assert rate.rate(25.0) == pytest.approx(0.0)
    assert rate.count == 4  # lifetime count is not windowed


def test_registry_get_or_create_and_namespacing():
    registry = MetricsRegistry()
    assert registry.counter("a.x") is registry.counter("a.x")
    registry.inc("a.x")
    registry.inc("a.y", 2.0)
    registry.inc("b.z", 5.0)
    assert registry.value("a.x") == 1.0
    assert registry.value("missing") == 0.0
    assert registry.with_prefix("a.") == {"x": 1.0, "y": 2.0}
    document = registry.snapshot()
    json.dumps(document)  # must be JSON-serialisable as-is
    assert document["counters"]["b.z"] == 5.0
    assert "a.x" in registry.render()


def test_instrumentation_compatibility_views():
    # messages_sent / messages_received / fault_counters survived the
    # move onto the registry as thin views over the same counters.
    instrumentation = Instrumentation()
    instrumentation.on_fault(1.0, "loss")
    instrumentation.on_fault(2.0, "loss")
    instrumentation.on_fault(3.0, "crash")
    assert instrumentation.fault_counters == {"loss": 2, "crash": 1}
    assert instrumentation.metrics.value("fault.loss") == 2.0
    instrumentation.messages_sent = 5
    assert instrumentation.messages_sent == 5
    assert instrumentation.metrics.value("messages.sent") == 5.0
    instrumentation.fault_counters = {}
    assert instrumentation.fault_counters == {"loss": 0, "crash": 0}


def test_profiler_observe_and_report():
    profiler = EngineProfiler()
    profiler.observe("Peer._choke_round", 0.002, 7)
    profiler.observe("Peer._choke_round", 0.004, 5)
    profiler.observe("Timer._fire", 0.0001, 5)
    registry = profiler.registry
    assert registry.value("events.Peer._choke_round") == 2.0
    assert registry.gauge("queue.depth").max_value == 7
    report = profiler.report(limit=1)
    assert "Peer._choke_round" in report
    assert "Timer._fire" not in report  # below the limit cut


def test_profiler_runs_engine_and_does_not_perturb():
    def run(profiled):
        swarm = tiny_swarm(
            num_pieces=10,
            seed=23,
            swarm_config=SwarmConfig(seed=23, snapshot_interval=5.0),
        )
        profiler = None
        if profiled:
            profiler = EngineProfiler()
            swarm.simulator.set_profiler(profiler)
        swarm.add_peer(config=fast_config(), is_seed=True)
        fingerprint = TraceFingerprint()
        swarm.add_peer(config=fast_config(upload=4 * KIB), observer=fingerprint)
        swarm.add_peer(config=fast_config(upload=2 * KIB))
        swarm.run(200.0)
        return fingerprint.digest(), profiler

    baseline, _ = run(profiled=False)
    profiled_digest, profiler = run(profiled=True)
    assert profiled_digest == baseline
    observed = profiler.registry.with_prefix("events.")
    assert observed and sum(observed.values()) > 0


def test_simulator_set_profiler_roundtrip():
    simulator = Simulator()
    profiler = EngineProfiler()
    simulator.set_profiler(profiler)
    fired = []
    simulator.schedule(1.0, lambda: fired.append(True))
    simulator.run()
    assert fired == [True]
    assert sum(profiler.registry.with_prefix("events.").values()) == 1.0
    simulator.set_profiler(None)
    assert simulator.profiler is None
