"""Property and unit tests for the mode-suppression selector (RFwPMS).

The selector's two contracts:

* **Safety** — it never suppresses an offer that contains a rarest
  *wanted* piece (``offered_min <= rarest_wanted``), and with
  ``suppression=0`` (or no bound scarcity oracle) it is
  bit-for-bit :class:`RarestFirstSelector`: same picks, same RNG
  consumption, so swapping it in never perturbs a seeded trace.
* **Liveness of the decline** — with an over-replicated offer and
  ``suppression=1`` it always declines (returns ``None``), the
  non-work-conserving move that keeps open-system swarms out of the
  one-club regime.

The backend equivalence (naive select vs select_indexed vs matrix
dispatch) is pinned swarm-level in ``test_picker_equivalence.py``; here
we pin the selector's own semantics, plus the picker's
``wanted_scarcity`` oracle the suppression decision is judged against.
"""

from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.piece_picker import PiecePicker
from repro.core.rarest_first import (
    ModeSuppressionSelector,
    RarestFirstSelector,
    SELECTOR_REGISTRY,
    make_selector,
)
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import PieceGeometry

pytestmark = pytest.mark.stability


def bound_selector(suppression, rarest_wanted):
    selector = ModeSuppressionSelector(suppression=suppression)
    selector.bind_scarcity(lambda: rarest_wanted)
    return selector


#: Availability maps as lists of small counts; candidates drawn from them.
availabilities = st.lists(st.integers(0, 6), min_size=1, max_size=12)


@st.composite
def offers(draw):
    availability = draw(availabilities)
    indices = list(range(len(availability)))
    candidates = draw(
        st.lists(st.sampled_from(indices), min_size=1, unique=True)
    )
    seed = draw(st.integers(0, 2**32 - 1))
    return availability, sorted(candidates), seed


@settings(max_examples=200, deadline=None)
@given(offers(), st.floats(0.0, 1.0))
def test_never_suppresses_an_offer_containing_the_rarest_wanted(case, suppression):
    """When the offer reaches down to the rarest wanted copy count, the
    selector must behave exactly like rarest first — no decline, no
    extra RNG draw — even at suppression=1."""
    availability, candidates, seed = case
    offered_min = min(availability[piece] for piece in candidates)
    selector = bound_selector(suppression, offered_min)
    reference = RarestFirstSelector()
    rng_a, rng_b = Random(seed), Random(seed)
    assert selector.select(candidates, availability, rng_a) == reference.select(
        candidates, availability, rng_b
    )
    # Identical RNG consumption: the streams stay in lockstep.
    assert rng_a.random() == rng_b.random()


@settings(max_examples=200, deadline=None)
@given(offers())
def test_suppression_zero_reduces_to_rarest_first(case):
    availability, candidates, seed = case
    # Even with an oracle reporting a much rarer wanted piece elsewhere,
    # suppression=0 must never decline nor draw.
    selector = bound_selector(0.0, 0)
    reference = RarestFirstSelector()
    rng_a, rng_b = Random(seed), Random(seed)
    assert selector.select(candidates, availability, rng_a) == reference.select(
        candidates, availability, rng_b
    )
    assert rng_a.random() == rng_b.random()


@settings(max_examples=200, deadline=None)
@given(offers())
def test_unbound_oracle_reduces_to_rarest_first(case):
    availability, candidates, seed = case
    selector = ModeSuppressionSelector(suppression=1.0)  # never bound
    reference = RarestFirstSelector()
    rng_a, rng_b = Random(seed), Random(seed)
    assert selector.select(candidates, availability, rng_a) == reference.select(
        candidates, availability, rng_b
    )
    assert rng_a.random() == rng_b.random()


@settings(max_examples=200, deadline=None)
@given(offers())
def test_full_suppression_always_declines_over_replicated_offers(case):
    availability, candidates, seed = case
    offered_min = min(availability[piece] for piece in candidates)
    # The oracle reports a strictly rarer wanted piece elsewhere.
    selector = bound_selector(1.0, offered_min - 1)
    assert selector.select(candidates, availability, Random(seed)) is None


def test_rarest_piece_as_only_candidate_is_never_suppressed():
    """The ISSUE's safety property in its sharpest form: a lone
    candidate at the rarest wanted tier always gets picked."""
    selector = bound_selector(1.0, 1)
    for seed in range(50):
        assert selector.select([3], [9, 9, 9, 1], Random(seed)) == 3


def test_suppression_probability_is_respected():
    selector = bound_selector(0.5, 1)
    rng = Random(7)
    outcomes = [selector.select([0], [4], rng) for __ in range(2000)]
    declines = sum(1 for outcome in outcomes if outcome is None)
    assert 850 < declines < 1150  # ~Binomial(2000, 0.5)


def test_select_indexed_matches_select_on_a_crafted_index():
    """One direct cross-check of the two entry points (the swarm-level
    differential tests cover the full dispatch)."""
    from repro.core.piece_picker import RarityIndex

    num_pieces = 6
    wanted = RarityIndex()
    availability = [3, 1, 3, 2, 1, 3]
    for piece, count in enumerate(availability):
        wanted.add(piece, count)
    remote = Bitfield(num_pieces, have=[0, 2, 3, 5])  # rarest tier absent
    for suppression, rarest in ((1.0, 1), (0.0, 1), (1.0, 2)):
        naive = bound_selector(suppression, rarest)
        indexed = bound_selector(suppression, rarest)
        rng_a, rng_b = Random(11), Random(11)
        picked_naive = naive.select([0, 2, 3, 5], availability, rng_a)
        picked_indexed = indexed.select_indexed(wanted, remote, rng_b)
        assert picked_naive == picked_indexed
        assert rng_a.random() == rng_b.random()


def test_constructor_validates_suppression():
    with pytest.raises(ValueError):
        ModeSuppressionSelector(suppression=1.5)
    with pytest.raises(ValueError):
        ModeSuppressionSelector(suppression=-0.1)


def test_registered_in_selector_registry():
    assert "mode-suppression" in SELECTOR_REGISTRY
    selector = make_selector("mode-suppression:suppression=0.7")
    assert isinstance(selector, ModeSuppressionSelector)
    assert selector.suppression == 0.7
    assert "0.7" in repr(selector)


class TestWantedScarcity:
    """The picker-side oracle mode suppression is judged against."""

    def make_picker(self, num_pieces=6, have=(), use_rarity_index=True):
        block = 16
        geometry = PieceGeometry(
            num_pieces * 4 * block, piece_size=4 * block, block_size=block
        )
        bitfield = Bitfield(num_pieces, have=list(have))
        return PiecePicker(
            geometry,
            bitfield,
            ModeSuppressionSelector(suppression=0.9),
            Random(3),
            use_rarity_index=use_rarity_index,
        )

    @pytest.mark.parametrize("use_rarity_index", [True, False])
    def test_tracks_rarest_missing_piece(self, use_rarity_index):
        picker = self.make_picker(use_rarity_index=use_rarity_index)
        picker.peer_joined(Bitfield(6, have=[0, 1]))
        picker.peer_joined(Bitfield(6, have=[0]))
        assert picker.wanted_scarcity() == 0  # pieces 2..5 have no copies

    @pytest.mark.parametrize("use_rarity_index", [True, False])
    def test_ignores_pieces_we_already_have(self, use_rarity_index):
        picker = self.make_picker(have=[2, 3, 4, 5], use_rarity_index=use_rarity_index)
        picker.peer_joined(Bitfield(6, have=[0, 1]))
        picker.peer_joined(Bitfield(6, have=[0]))
        assert picker.wanted_scarcity() == 1  # piece 1 is the rarest wanted

    @pytest.mark.parametrize("use_rarity_index", [True, False])
    def test_none_when_nothing_is_wanted(self, use_rarity_index):
        picker = self.make_picker(
            have=range(6), use_rarity_index=use_rarity_index
        )
        assert picker.wanted_scarcity() is None

    @pytest.mark.parametrize("use_rarity_index", [True, False])
    def test_oracle_is_bound_into_the_selector(self, use_rarity_index):
        picker = self.make_picker(use_rarity_index=use_rarity_index)
        selector = picker._selector
        assert selector._scarcity() == picker.wanted_scarcity()
