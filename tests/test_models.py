"""Tests for the analytical models (Qiu-Srikant fluid, Yang-de Veciana
service capacity) and their agreement with the simulator."""

import pytest

from repro.models import (
    FluidModel,
    exponential_growth_time,
    flash_crowd_capacity,
    minimum_distribution_time,
)
from repro.models.service_capacity import capacity_trajectory


class TestFluidModelBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FluidModel(arrival_rate=-1.0, upload_rate=1.0)
        with pytest.raises(ValueError):
            FluidModel(arrival_rate=1.0, upload_rate=0.0)
        with pytest.raises(ValueError):
            FluidModel(arrival_rate=1.0, upload_rate=1.0, effectiveness=2.0)
        with pytest.raises(ValueError):
            FluidModel(arrival_rate=1.0, upload_rate=1.0, download_rate=0.0)

    def test_completion_flow_upload_limited(self):
        model = FluidModel(arrival_rate=1.0, upload_rate=0.1, download_rate=10.0)
        # 10 leechers, 2 seeds: upload is (10+2)*0.1 = 1.2 << download 100.
        assert model.completion_flow(10.0, 2.0) == pytest.approx(1.2)

    def test_completion_flow_download_limited(self):
        model = FluidModel(arrival_rate=1.0, upload_rate=10.0, download_rate=0.5)
        assert model.completion_flow(10.0, 2.0) == pytest.approx(5.0)

    def test_effectiveness_scales_leecher_contribution(self):
        full = FluidModel(arrival_rate=1.0, upload_rate=0.1, effectiveness=1.0)
        half = FluidModel(arrival_rate=1.0, upload_rate=0.1, effectiveness=0.5)
        assert half.completion_flow(10.0, 0.0) == pytest.approx(
            0.5 * full.completion_flow(10.0, 0.0)
        )

    def test_integration_conserves_nonnegativity(self):
        model = FluidModel(
            arrival_rate=0.5,
            upload_rate=0.01,
            abort_rate=0.001,
            seed_departure_rate=0.02,
        )
        states = model.integrate(duration=500.0, dt=0.5)
        assert all(s.leechers >= 0 and s.seeds >= 0 for s in states)

    def test_integration_validation(self):
        model = FluidModel(arrival_rate=0.5, upload_rate=0.01)
        with pytest.raises(ValueError):
            model.integrate(duration=0.0)
        with pytest.raises(ValueError):
            model.integrate(duration=10.0, dt=0.0)

    def test_observer_called(self):
        model = FluidModel(arrival_rate=0.5, upload_rate=0.01)
        seen = []
        model.integrate(duration=10.0, dt=1.0, observer=seen.append)
        assert len(seen) == 10


class TestFluidSteadyState:
    def test_trajectory_converges_to_steady_state(self):
        model = FluidModel(
            arrival_rate=0.2,
            upload_rate=0.005,
            seed_departure_rate=0.01,
        )
        equilibrium = model.steady_state()
        assert equilibrium is not None
        states = model.integrate(
            duration=20000.0, dt=1.0, initial_leechers=0.0, initial_seeds=1.0
        )
        final = states[-1]
        assert final.leechers == pytest.approx(equilibrium.leechers, rel=0.05)
        assert final.seeds == pytest.approx(equilibrium.seeds, rel=0.05)

    def test_flow_balance_at_steady_state(self):
        model = FluidModel(
            arrival_rate=0.2,
            upload_rate=0.005,
            abort_rate=0.001,
            seed_departure_rate=0.01,
        )
        equilibrium = model.steady_state()
        dx, dy = model.derivatives(equilibrium.leechers, equilibrium.seeds)
        assert dx == pytest.approx(0.0, abs=1e-9)
        assert dy == pytest.approx(0.0, abs=1e-9)

    def test_no_equilibrium_without_seed_departure(self):
        model = FluidModel(arrival_rate=0.2, upload_rate=0.005)
        assert model.steady_state() is None

    def test_mean_download_time_littles_law(self):
        model = FluidModel(
            arrival_rate=0.2,
            upload_rate=0.005,
            seed_departure_rate=0.01,
        )
        download_time = model.mean_download_time()
        equilibrium = model.steady_state()
        assert download_time == pytest.approx(equilibrium.leechers / model.lam)

    def test_faster_upload_shortens_downloads(self):
        def mean_dl(mu):
            return FluidModel(
                arrival_rate=0.2, upload_rate=mu, seed_departure_rate=0.01
            ).mean_download_time()

        assert mean_dl(0.01) < mean_dl(0.005)

    def test_lower_effectiveness_lengthens_downloads(self):
        def mean_dl(eta):
            return FluidModel(
                arrival_rate=0.2,
                upload_rate=0.005,
                seed_departure_rate=0.01,
                effectiveness=eta,
            ).mean_download_time()

        assert mean_dl(0.5) > mean_dl(1.0)


class TestServiceCapacity:
    def test_doubling(self):
        assert flash_crowd_capacity(1, 0.0, 10.0) == 1.0
        assert flash_crowd_capacity(1, 10.0, 10.0) == 2.0
        assert flash_crowd_capacity(1, 30.0, 10.0) == 8.0

    def test_growth_time_inverse(self):
        time = exponential_growth_time(1, 64, 10.0)
        assert flash_crowd_capacity(1, time, 10.0) == pytest.approx(64.0)

    def test_growth_time_already_reached(self):
        assert exponential_growth_time(8, 4, 10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            flash_crowd_capacity(-1, 1.0, 1.0)
        with pytest.raises(ValueError):
            flash_crowd_capacity(1, 1.0, 0.0)
        with pytest.raises(ValueError):
            exponential_growth_time(0, 10, 1.0)

    def test_trajectory(self):
        samples = capacity_trajectory(1, 30.0, 10.0, step=10.0)
        assert [c for __, c in samples] == [1.0, 2.0, 4.0, 8.0]

    def test_minimum_distribution_time_splitting_helps(self):
        """The key improvement of [25]: more pieces, shorter distribution."""
        one_piece = minimum_distribution_time(
            content_size=1000.0, source_upload=10.0, peer_upload=10.0,
            num_peers=64, num_pieces=1,
        )
        many_pieces = minimum_distribution_time(
            content_size=1000.0, source_upload=10.0, peer_upload=10.0,
            num_peers=64, num_pieces=100,
        )
        assert many_pieces < one_piece
        # With many pieces the bound approaches the source time alone.
        assert many_pieces == pytest.approx(100.0 + 6 * 1.0)

    def test_single_peer_no_relay(self):
        bound = minimum_distribution_time(1000.0, 10.0, 10.0, num_peers=1)
        assert bound == pytest.approx(100.0)

    def test_distribution_validation(self):
        with pytest.raises(ValueError):
            minimum_distribution_time(0.0, 1.0, 1.0, 1)
        with pytest.raises(ValueError):
            minimum_distribution_time(1.0, 1.0, 1.0, 0)


class TestModelVsSimulation:
    """The paper's §V point: the simulator (local knowledge) performs
    close to the global-knowledge models."""

    def test_transient_capacity_growth_is_superlinear(self):
        """Completions in a flash crowd accelerate like the branching
        model predicts (early inter-completion gaps shrink)."""
        from repro.protocol.metainfo import make_metainfo
        from repro.sim.churn import flash_crowd as crowd
        from repro.sim.config import KIB, PeerConfig, SwarmConfig
        from repro.sim.swarm import Swarm

        metainfo = make_metainfo(
            "model-check", num_pieces=16, piece_size=8 * KIB, block_size=2 * KIB
        )
        swarm = Swarm(metainfo, SwarmConfig(seed=5))
        swarm.add_peer(config=PeerConfig(upload_capacity=8 * KIB), is_seed=True)
        crowd(
            swarm, 24,
            config_factory=lambda rng: PeerConfig(upload_capacity=8 * KIB),
            spread=5.0,
        )
        result = swarm.run(1500)
        completions = sorted(result.completions.values())
        assert len(completions) >= 20
        # Split completions in first/second half: the second half should
        # complete in a much shorter wall-clock span (accelerating).
        half = len(completions) // 2
        first_span = completions[half - 1] - completions[0]
        second_span = completions[-1] - completions[half]
        assert second_span < first_span

    def test_simulation_download_time_within_model_envelope(self):
        """Steady swarm's mean download time sits between the fluid
        model's prediction (global knowledge, eta=1) and a few multiples
        of it."""
        from repro.protocol.metainfo import make_metainfo
        from repro.sim.churn import poisson_arrivals
        from repro.sim.config import KIB, PeerConfig, SwarmConfig
        from repro.sim.swarm import Swarm

        upload = 4 * KIB
        content = 32 * 4 * KIB  # 32 pieces x 4 kiB
        arrival_rate = 0.05
        # Seeds leave quickly (gamma > mu) so the fluid model has an
        # upload-constrained equilibrium; with long-lived seeds the model
        # degenerates (capacity outgrows demand, T -> 0).
        seed_stay = 10.0

        metainfo = make_metainfo(
            "fluid-check", num_pieces=32, piece_size=4 * KIB, block_size=1 * KIB
        )
        swarm = Swarm(metainfo, SwarmConfig(seed=11))
        swarm.add_peer(config=PeerConfig(upload_capacity=upload), is_seed=True)
        poisson_arrivals(
            swarm,
            rate=arrival_rate,
            duration=4000.0,
            config_factory=lambda rng: PeerConfig(
                upload_capacity=upload, seeding_time=seed_stay
            ),
        )
        result = swarm.run(4000.0)
        measured = result.mean_download_time()
        assert measured is not None

        model = FluidModel(
            arrival_rate=arrival_rate,
            upload_rate=upload / content,
            seed_departure_rate=1.0 / seed_stay,
            effectiveness=1.0,
        )
        predicted = model.mean_download_time()
        assert predicted is not None
        # Local knowledge costs something but stays within a small factor
        # of the global-knowledge fluid prediction.
        assert predicted * 0.5 <= measured <= predicted * 4.0
