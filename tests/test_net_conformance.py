"""Differential sim-vs-net conformance tests.

The same torrent runs through the discrete-event engine and through a
:class:`~repro.net.swarm.LiveSwarm` of real asyncio peers on localhost
TCP.  Both emit schema-v1 traces, and both must satisfy the same
protocol invariants (message grammar, unchoke cardinality, byte
conservation, rarest-first piece selection) — plus the runs must agree
on what actually happened: every leecher completes every piece, and the
replayed :class:`~repro.instrumentation.logger.Instrumentation`
counters match (counts, not rates — wall-clock and virtual time scale
differently by design).

The checker negative tests at the bottom prove each invariant detector
actually fires on a violating trace, so green differential runs mean
something.
"""

import pytest

from repro.analysis import interarrival_summary
from repro.instrumentation.replay import replay_instrumentation
from repro.instrumentation.trace import TraceRecorder, TracingObserver
from repro.net.conformance import (
    check_byte_conservation,
    check_message_grammar,
    check_rarest_first,
    check_trace,
    check_unchoke_cardinality,
    completion_counts,
    traced_addresses,
)
from repro.net.swarm import LiveSwarm
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig

from tests.conftest import fast_config, tiny_swarm

pytestmark = pytest.mark.net

NUM_PIECES = 24
SEEDS = 1
LEECHERS = 5
SEED = 11

# Live peers run against wall clock: generous upload caps and a short
# choke interval keep the run under a couple of seconds while still
# exercising several choke rounds.
LIVE_CONFIG = PeerConfig(
    upload_capacity=256 * KIB,
    choke_interval=0.2,
    rate_window=1.0,
    min_peer_set=1,
)


def _make_metainfo(name):
    return make_metainfo(name, num_pieces=NUM_PIECES, piece_size=4 * KIB, block_size=KIB)


@pytest.fixture(scope="module")
def live_run():
    """One clean 6-peer live download, traced swarm-wide."""
    recorder = TraceRecorder()
    swarm = LiveSwarm(
        _make_metainfo("difflive"), seed=SEED, config=LIVE_CONFIG, recorder=recorder
    )
    swarm.add_peers(SEEDS, LEECHERS)
    result = swarm.run_sync(timeout=60.0)
    return swarm, recorder, result


@pytest.fixture(scope="module")
def sim_run():
    """The same scenario through the discrete-event engine."""
    recorder = TraceRecorder()
    swarm = tiny_swarm(num_pieces=NUM_PIECES, seed=SEED)
    swarm.observer_factory = lambda: TracingObserver(recorder)
    config = fast_config(upload=32 * KIB, min_peer_set=1)
    for _ in range(SEEDS):
        swarm.add_peer(config=config, is_seed=True)
    for _ in range(LEECHERS):
        swarm.add_peer(config=config)
    swarm.run(600.0)
    assert all(peer.is_seed for peer in swarm.peers.values())
    for peer in swarm.peers.values():
        peer.observer.finalize(now=swarm.simulator.now)
    recorder.close()
    return swarm, recorder


class TestLiveSwarm:
    def test_six_peer_swarm_downloads_to_completion(self, live_run):
        swarm, recorder, result = live_run
        assert len(result.addresses) == SEEDS + LEECHERS
        assert result.all_complete
        # Leechers really moved the payload: each downloaded at least the
        # torrent (endgame duplicates can push the count slightly over).
        torrent_bytes = NUM_PIECES * 4 * KIB
        leechers = [p for p in swarm.peers if p.became_seed_at != 0.0]
        assert len(leechers) == LEECHERS
        for peer in leechers:
            assert result.downloaded[peer.address] >= torrent_bytes
        assert result.trace_fingerprint is not None

    def test_live_trace_satisfies_all_invariants(self, live_run):
        __, recorder, __ = live_run
        report = check_trace(recorder, num_pieces=NUM_PIECES)
        report.assert_ok()
        # Every checker actually evaluated something — a trivially green
        # report over an empty trace would also "pass".
        assert report.checks["grammar"] > 100
        assert report.checks["unchoke"] >= SEEDS + LEECHERS
        assert report.checks["conservation"] > 1
        assert report.checks["rarest_first"] > 10

    def test_sim_trace_satisfies_all_invariants(self, sim_run):
        __, recorder = sim_run
        report = check_trace(recorder, num_pieces=NUM_PIECES)
        report.assert_ok()
        assert report.checks["grammar"] > 100
        assert report.checks["rarest_first"] > 10


class TestDifferential:
    def test_completion_counts_match(self, sim_run, live_run):
        """Sim and live agree on who completed how many pieces."""
        sim_counts = completion_counts(sim_run[1])
        live_counts = completion_counts(live_run[1])
        assert sorted(sim_counts.values()) == sorted(live_counts.values())
        # Each run: exactly the leechers complete, each every piece.
        for counts, recorder in ((sim_counts, sim_run[1]), (live_counts, live_run[1])):
            assert len(traced_addresses(recorder)) == SEEDS + LEECHERS
            assert len(counts) == LEECHERS
            assert set(counts.values()) == {NUM_PIECES}

    def test_replayed_instrumentation_counters_match(self, sim_run, live_run):
        """Replaying either trace yields the same completion counters."""
        replays = []
        for __, recorder in ((sim_run[0], sim_run[1]), (live_run[0], live_run[1])):
            counts = completion_counts(recorder)
            leecher = sorted(counts)[0]
            replays.append(replay_instrumentation(recorder, peer=leecher))
        sim_replay, live_replay = replays
        assert len(sim_replay.piece_completions) == NUM_PIECES
        assert len(live_replay.piece_completions) == NUM_PIECES
        assert sim_replay.seed_state_at is not None
        assert live_replay.seed_state_at is not None
        for replay in replays:
            assert replay.messages_sent > 0
            assert replay.messages_received > 0
            assert replay.replayed_from_events > 0

    def test_live_trace_flows_through_analysis_unchanged(self, live_run):
        """A live trace feeds repro.analysis exactly like a sim trace."""
        __, recorder, __ = live_run
        leecher = sorted(completion_counts(recorder))[0]
        instrumentation = replay_instrumentation(recorder, peer=leecher)
        summary = interarrival_summary(instrumentation, kind="piece")
        assert len(summary.all_items) == NUM_PIECES - 1
        assert all(interval >= 0.0 for interval in summary.all_items)


# ----------------------------------------------------------------------
# Negative tests: each checker must fire on a trace that violates it.
# ----------------------------------------------------------------------


def _open(peer, remote):
    return {"type": "conn_open", "peer": peer, "remote": remote}


def _bitfield(peer, remote, direction, bits):
    return {
        "type": direction,
        "peer": peer,
        "remote": remote,
        "msg": "Bitfield",
        "bits": bits,
    }


class TestGrammarChecker:
    def test_flags_message_before_open(self):
        report = check_message_grammar(
            [{"type": "msg_sent", "peer": "a", "remote": "b", "msg": "Bitfield"}]
        )
        assert any("before handshake" in v for v in report.violations)

    def test_flags_non_bitfield_first(self):
        report = check_message_grammar(
            [
                _open("a", "b"),
                {"type": "msg_sent", "peer": "a", "remote": "b", "msg": "Interested"},
            ]
        )
        assert any("first sent message not BITFIELD" in v for v in report.violations)

    def test_flags_request_while_choked(self):
        events = [
            _open("a", "b"),
            _bitfield("a", "b", "msg_sent", ""),
            _bitfield("a", "b", "msg_recv", "ff"),
            {"type": "msg_sent", "peer": "a", "remote": "b", "msg": "Request",
             "piece": 0, "offset": 0, "length": 1024},
        ]
        report = check_message_grammar(events)
        assert any("REQUEST while choked" in v for v in report.violations)
        # After an Unchoke the same Request is legal.
        events.insert(3, {"type": "msg_recv", "peer": "a", "remote": "b",
                          "msg": "Unchoke"})
        assert check_message_grammar(events).ok


class TestUnchokeChecker:
    def test_flags_slot_overflow_and_duplicates(self):
        over = {"type": "choke", "peer": "a", "unchoked": ["b", "c", "d", "e", "f"]}
        dupe = {"type": "choke", "peer": "a", "unchoked": ["b", "b"]}
        report = check_unchoke_cardinality([over, dupe], unchoke_slots=4)
        assert len(report.violations) == 2
        assert check_unchoke_cardinality(
            [{"type": "choke", "peer": "a", "unchoked": ["b", "c", "d", "e"]}]
        ).ok


class TestConservationChecker:
    def test_flags_swarm_and_link_asymmetry(self):
        events = [
            {"type": "conn_close", "peer": "a", "remote": "b", "up": 100.0, "down": 0.0},
            {"type": "conn_close", "peer": "b", "remote": "a", "up": 0.0, "down": 60.0},
        ]
        report = check_byte_conservation(events)
        assert any("not conserved" in v for v in report.violations)
        assert any("link a->b" in v for v in report.violations)

    def test_accepts_balanced_books(self):
        events = [
            {"type": "conn_close", "peer": "a", "remote": "b", "up": 100.0, "down": 0.0},
            {"type": "finalize", "peer": "b",
             "open": [{"remote": "a", "up": 0.0, "down": 100.0}]},
        ]
        assert check_byte_conservation(events).ok


class TestRarestFirstChecker:
    def _trace(self, requested_piece):
        # Three pieces; remote "r1" offers {0,1,2}, "r2" offers {0}.
        # Availability is therefore [2, 1, 1]: requesting piece 0 first
        # ignores two strictly rarer candidates r1 offers.
        return [
            {"type": "attach", "peer": "a", "pieces": 3, "seed": False},
            _open("a", "r1"),
            _open("a", "r2"),
            _bitfield("a", "r1", "msg_recv", "e0"),
            _bitfield("a", "r2", "msg_recv", "80"),
            {"type": "msg_sent", "peer": "a", "remote": "r1", "msg": "Request",
             "piece": requested_piece, "offset": 0, "length": 1024},
        ]

    def test_flags_common_piece_over_rare(self):
        report = check_rarest_first(self._trace(0), random_first_threshold=0)
        assert report.checks["rarest_first"] == 1
        assert any("availability" in v for v in report.violations)

    def test_accepts_rarest_candidate(self):
        assert check_rarest_first(self._trace(1), random_first_threshold=0).ok

    def test_random_first_warmup_is_exempt(self):
        # With the default threshold the peer has 0 < 4 pieces: skipped.
        assert check_rarest_first(self._trace(0), random_first_threshold=4).ok
