"""Live-swarm fault smoke test: crash one peer mid-download.

A victim leecher is killed abruptly (task cancellation + TCP RST on
every link) once it holds a few pieces.  The survivors must reap the
dead links, re-plan around the lost availability, and still download to
completion — and the reaps must land in the metrics registry, mirroring
what the sim's fault-injection layer records.
"""

import asyncio

import pytest

from repro.instrumentation.trace import TraceRecorder
from repro.net.conformance import check_trace, completion_counts
from repro.net.swarm import LiveSwarm
from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig

pytestmark = pytest.mark.net

NUM_PIECES = 16
LIVE_CONFIG = PeerConfig(
    upload_capacity=128 * KIB,
    choke_interval=0.2,
    rate_window=1.0,
    min_peer_set=1,
)


async def _run_with_midway_crash(swarm, victim, timeout=60.0):
    await swarm.start()
    # Let the victim make real progress before pulling the plug, so its
    # links carry in-flight traffic when the RSTs land.
    async def crash_when_warm():
        while victim.bitfield.count < 3:
            await asyncio.sleep(0.01)
        swarm.kill_peer(victim.address)

    await asyncio.wait_for(crash_when_warm(), timeout)
    survivors = [peer for peer in swarm.peers if peer is not victim]
    await asyncio.wait_for(
        asyncio.gather(*[peer.completed.wait() for peer in survivors]), timeout
    )
    await swarm.shutdown()


def test_swarm_survives_peer_crash():
    metainfo = make_metainfo(
        "faultlive", num_pieces=NUM_PIECES, piece_size=4 * KIB, block_size=KIB
    )
    recorder = TraceRecorder()
    swarm = LiveSwarm(metainfo, seed=23, config=LIVE_CONFIG, recorder=recorder)
    swarm.add_peers(1, 4)
    victim = swarm.peers[-1]

    asyncio.run(_run_with_midway_crash(swarm, victim))
    result = swarm.result()

    # Every survivor leecher finished despite the crash.
    survivors = [peer for peer in swarm.peers if peer is not victim]
    for peer in survivors:
        assert peer.bitfield.is_complete()
    assert not victim.bitfield.is_complete()
    assert victim.address not in result.completed_at

    # The crash is visible in the registry: the kill itself, the victim's
    # own crash bookkeeping, and at least one survivor reaping a dead
    # link (RST races with FIN-less EOF, so the reap count varies).
    assert swarm.metrics.value("fault.peer_killed") == 1
    assert swarm.metrics.value("fault.peer_crashed") == 1
    assert swarm.metrics.value("fault.connection_reaped") >= 1

    # The trace still satisfies every invariant except byte conservation,
    # which a crash legitimately breaks: the victim's receive counters
    # die with it while senders already counted the in-flight bytes.
    report = check_trace(recorder, check_conservation=False, num_pieces=NUM_PIECES)
    report.assert_ok()
    counts = completion_counts(recorder)
    completed = [addr for addr, count in counts.items() if count == NUM_PIECES]
    assert sorted(completed) == sorted(peer.address for peer in survivors
                                       if peer.became_seed_at != 0.0)
