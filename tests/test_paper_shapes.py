"""Qualitative reproduction checks of the paper's headline results, at
test-suite scale (the full-scale versions live in benchmarks/).

Each test encodes one "shape" from DESIGN.md §5.
"""

from repro.analysis.fairness import unchoke_interest_correlation
from repro.analysis.interarrival import interarrival_summary
from repro.analysis.replication import (
    rarest_set_decay_rate,
    rarest_set_series,
    replication_series,
)
from repro.core.choke import OldSeedChoker, SeedChoker, TitForTatChoker
from repro.core.fairness import jain_index
from repro.core.free_rider import FreeRiderChoker
from repro.core.rarest_first import RarestFirstSelector, SequentialSelector
from repro.instrumentation import Instrumentation
from repro.sim.config import KIB, PeerConfig

from tests.conftest import fast_config, tiny_swarm


def populated_swarm(
    num_pieces=32,
    leechers=10,
    seed=17,
    seed_upload=4 * KIB,
    leecher_upload=2 * KIB,
    selector_factory=None,
    seed_choker_factory=None,
):
    swarm = tiny_swarm(num_pieces=num_pieces, seed=seed)
    kwargs = {}
    if seed_choker_factory is not None:
        kwargs["seed_choker"] = seed_choker_factory()
    swarm.add_peer(config=fast_config(upload=seed_upload), is_seed=True, **kwargs)
    for __ in range(leechers):
        peer_kwargs = {}
        if selector_factory is not None:
            peer_kwargs["selector"] = selector_factory()
        if seed_choker_factory is not None:
            peer_kwargs["seed_choker"] = seed_choker_factory()
        swarm.add_peer(config=fast_config(upload=leecher_upload), **peer_kwargs)
    return swarm


class TestRarestFirstDiversity:
    """§IV-A: rarest first keeps piece diversity high."""

    def test_rarest_first_keeps_min_copies_above_zero_in_steady_state(self):
        swarm = populated_swarm()
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(), observer=trace)
        trace.start_sampling()
        swarm.run(500)
        # After the initial seed has pushed a first copy, the min (over
        # the local peer set, while the local peer is still a leecher)
        # never returns to zero: rare pieces do not reappear (§IV-A.2.b).
        series = replication_series(trace, leecher_state_only=True)
        first_full = swarm.result.first_full_copy_at
        assert first_full is not None
        post = [
            low
            for time, low in zip(series.times, series.min_copies)
            if time > first_full
        ]
        assert post and all(value >= 1 for value in post)

    def test_rarest_first_beats_sequential_on_diversity(self):
        """Sequential selection leaves high-index pieces rare for much
        longer: the availability spread (max-min) stays wider."""

        def spread(selector_factory):
            swarm = populated_swarm(selector_factory=selector_factory, seed=23)
            trace = Instrumentation()
            swarm.add_peer(
                config=fast_config(),
                observer=trace,
                selector=selector_factory(),
            )
            trace.start_sampling()
            swarm.run(260)
            series = replication_series(trace)
            gaps = [
                high - low
                for low, high in zip(series.min_copies, series.max_copies)
            ]
            return sum(gaps) / len(gaps)

        assert spread(RarestFirstSelector) < spread(SequentialSelector)

    def test_rarest_set_collapses_after_churn(self):
        """Steady state: the rarest-pieces set is quickly duplicated
        (sawtooth, figure 6) rather than growing without bound."""
        swarm = populated_swarm(num_pieces=24, leechers=8)
        trace = Instrumentation()
        swarm.add_peer(config=fast_config(), observer=trace)
        trace.start_sampling()
        swarm.run(500)
        times, sizes = rarest_set_series(trace)
        assert min(sizes) < max(sizes)  # it does vary (churny signal)
        assert sizes[-1] <= max(sizes)  # and never diverges


class TestTransientState:
    """§IV-A.2.a: the initial seed's capacity bounds the transient phase."""

    def test_rare_pieces_exist_during_transient(self):
        """While the source has not pushed a full copy, the rarest piece
        has at most one copy in the peer set (it lives only on the
        initial seed; in a torrent larger than the peer set, as in the
        Table-I scenarios, it would read zero as in figure 2)."""
        swarm = populated_swarm(seed_upload=1 * KIB, num_pieces=48)
        trace = Instrumentation()
        swarm.add_peer(config=fast_config(), observer=trace)
        trace.start_sampling()
        swarm.run(120)  # well inside the transient phase
        series = replication_series(trace)
        at_most_one = sum(1 for low in series.min_copies if low <= 1)
        assert at_most_one / len(series.min_copies) > 0.8
        assert swarm.is_transient()

    def test_rarest_set_decays_linearly_with_seed_capacity(self):
        def decay(seed_upload):
            swarm = populated_swarm(seed_upload=seed_upload, num_pieces=48, seed=31)
            trace = Instrumentation()
            swarm.add_peer(config=fast_config(), observer=trace)
            trace.start_sampling()
            swarm.run(120)
            times, sizes = rarest_set_series(trace)
            rate = rarest_set_decay_rate(times, sizes)
            return rate

        slow = decay(1 * KIB)
        fast = decay(4 * KIB)
        assert slow is not None and fast is not None
        assert slow < 0 and fast < 0  # both decreasing
        assert fast < slow  # faster source drains the rare set faster

    def test_transient_duration_set_by_seed_upload(self):
        def first_copy_time(seed_upload):
            swarm = populated_swarm(seed_upload=seed_upload, num_pieces=24, seed=37)
            swarm.add_peer(config=fast_config())
            return swarm.run(600).first_full_copy_at

        slow = first_copy_time(1 * KIB)
        fast = first_copy_time(4 * KIB)
        assert slow is not None and fast is not None
        assert slow > 1.5 * fast


class TestLastPiecesProblem:
    """§IV-A.3: no last-pieces problem in steady state, but a
    first-blocks problem."""

    def test_no_last_pieces_problem_in_steady_state(self):
        swarm = populated_swarm(num_pieces=48, leechers=10)
        trace = Instrumentation()
        swarm.add_peer(config=fast_config(), observer=trace)
        trace.start_sampling()
        swarm.run(600)
        assert trace.seed_state_at is not None
        summary = interarrival_summary(trace, kind="piece", n=10)
        assert summary.last_slowdown() < 2.0

    def test_first_blocks_slower_than_the_rest(self):
        swarm = populated_swarm(num_pieces=48, leechers=10)
        trace = Instrumentation()
        swarm.add_peer(config=fast_config(), observer=trace)
        trace.start_sampling()
        swarm.run(600)
        summary = interarrival_summary(trace, kind="block", n=10)
        # The startup (waiting for the first optimistic unchoke) makes the
        # first blocks' largest gaps the largest overall (figure 8).
        first_tail, last_tail = summary.tail_ratio(0.9)
        assert first_tail >= last_tail


class TestChokeReciprocation:
    """§IV-B.2: the choke algorithm fosters reciprocation and penalises
    free riders in leecher state."""

    def test_free_rider_penalised_in_steady_scarce_swarm(self):
        """Leecher-state choke starves the free rider of regular-unchoke
        slots.  The paired design compares the rider to a *twin* that
        joins at the same instant with the same (empty) bitfield but
        contributes upload: the twin downloads much faster and completes
        earlier.  Scarcity matters — completing peers leave instead of
        lingering as seeds, because with abundant seed capacity the
        paper's criteria deliberately let free riders use the excess.
        """
        from random import Random

        from repro.protocol.bitfield import Bitfield

        rng = Random(6)
        num_pieces = 192
        swarm = tiny_swarm(num_pieces=num_pieces, seed=41)
        swarm.add_peer(config=fast_config(upload=3 * KIB), is_seed=True)
        for __ in range(24):
            have = rng.sample(range(num_pieces), rng.randint(20, 120))
            swarm.add_peer(
                config=fast_config(upload=2 * KIB, seeding_time=1.0),
                initial_bitfield=Bitfield(num_pieces, have=have),
            )
        twin = swarm.add_peer(config=fast_config(upload=2 * KIB))
        rider = swarm.add_peer(
            config=PeerConfig(upload_capacity=0.0),
            leecher_choker=FreeRiderChoker(),
            seed_choker=FreeRiderChoker(),
        )
        swarm.run(200)
        assert twin.total_downloaded > 2.0 * rider.total_downloaded
        result = swarm.run(2800)
        # The rider is penalised but not starved to death (§IV-B.1: free
        # riders may use excess capacity, here the seed's rotation).
        assert rider.address in result.completions
        assert (
            result.completions[rider.address]
            > result.completions[twin.address] + 50.0
        )

    def test_upload_concentrates_on_reciprocating_peers(self):
        swarm = populated_swarm(num_pieces=48, leechers=10, seed=43)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(upload=4 * KIB), observer=trace)
        trace.start_sampling()
        swarm.run(400)
        trace.finalize()
        from repro.analysis.fairness import leecher_contribution

        up_shares, down_shares = leecher_contribution(trace, set_size=2, num_sets=5)
        # The top set of uploads received the lion's share...
        assert up_shares[0] == max(up_shares)
        # ...and that same set reciprocated more than the bottom set.
        assert down_shares[0] >= down_shares[-1]


class TestSeedStateFairness:
    """§IV-B.3: the new seed choke serves everyone near-uniformly; the
    old one lets fast peers monopolise the seed."""

    def _seed_service_rounds(self, seed_choker_factory, seed_value):
        """Unchoked rounds per remote peer: the *service time* a seed
        grants each leecher, which the paper's seed criterion equalises.

        The content is large enough that nobody completes during the
        window, so every leecher stays interested throughout and the two
        algorithms are compared on identical demand.
        """
        swarm = tiny_swarm(num_pieces=512, seed=seed_value)
        trace = Instrumentation()
        # The instrumented peer IS the seed here.
        local = swarm.add_peer(
            config=fast_config(upload=8 * KIB),
            is_seed=True,
            seed_choker=seed_choker_factory(),
            observer=trace,
        )
        trace.start_sampling()
        # Heterogeneous download capacities: under the old (rate-ranked)
        # algorithm the three uncapped peers monopolise the seed.
        for index in range(9):
            download = None if index < 3 else 1 * KIB
            swarm.add_peer(
                config=fast_config(upload=256.0, download=download),
            )
        swarm.run(600)
        trace.finalize()
        return {
            address: float(record.unchoked_rounds_seed)
            for address, record in trace.records.items()
        }

    def test_new_seed_choke_serves_more_uniformly_than_old(self):
        new_rounds = self._seed_service_rounds(SeedChoker, 47)
        old_rounds = self._seed_service_rounds(OldSeedChoker, 47)
        assert len(new_rounds) == 9 and len(old_rounds) == 9
        assert jain_index(list(new_rounds.values())) > jain_index(
            list(old_rounds.values())
        )

    def test_old_seed_choke_lets_fast_peers_monopolise(self):
        """Under the old algorithm the uncapped (fast-download) peers
        hold the regular slots for virtually the whole run."""
        old_rounds = self._seed_service_rounds(OldSeedChoker, 61)
        ranked = sorted(old_rounds.values(), reverse=True)
        total = sum(ranked)
        assert total > 0
        assert sum(ranked[:3]) / total > 0.55

    def test_new_seed_choke_unchoke_correlates_with_interest_time(self):
        swarm = populated_swarm(num_pieces=32, leechers=8, seed=53)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(upload=4 * KIB), observer=trace)
        trace.start_sampling()
        swarm.run(700)
        trace.finalize()
        assert trace.seed_state_at is not None
        correlation = unchoke_interest_correlation(trace, state="seed")
        if len(correlation) >= 4:
            assert correlation.correlation > 0.0


class TestTitForTatStrandsCapacity:
    """§IV-B.1: bit-level tit-for-tat wastes excess capacity that the
    choke algorithm delivers to asymmetric leechers."""

    def test_asymmetric_leecher_completes_faster_under_choke(self):
        """A leecher with tiny upload and big download capacity finishes
        sooner under the choke algorithm than when the other leechers
        run bit-level tit-for-tat and refuse it once the deficit
        allowance is spent."""

        def asymmetric_completion(leecher_choker_factory):
            swarm = tiny_swarm(num_pieces=48, seed=7)
            # Plenty of excess capacity: a fast seed.
            swarm.add_peer(config=fast_config(upload=8 * KIB), is_seed=True,
                           seed_choker=SeedChoker())
            for __ in range(5):
                swarm.add_peer(
                    config=fast_config(upload=4 * KIB),
                    leecher_choker=leecher_choker_factory(),
                )
            # The asymmetric peer: tiny upload, unconstrained download.
            asymmetric = swarm.add_peer(
                config=fast_config(upload=256.0),
                leecher_choker=leecher_choker_factory(),
            )
            result = swarm.run(1500)
            return result.completions[asymmetric.address]

        block = 1 * KIB
        # Default chokers (None selects the mainline leecher choke).
        plain = asymmetric_completion(lambda: None)
        tft = asymmetric_completion(
            lambda: TitForTatChoker(deficit_threshold=2 * block)
        )
        assert plain < tft
