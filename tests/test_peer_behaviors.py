"""Behavioural tests of peer-set maintenance, pipelining, and the
protocol niceties not covered by the core integration tests."""

from repro.protocol.messages import Cancel, Request
from repro.sim.config import KIB, PeerConfig, SwarmConfig

from tests.conftest import fast_config, tiny_swarm


class TestTrackerInteraction:
    def test_refill_when_peer_set_shrinks(self):
        swarm = tiny_swarm(num_pieces=64)
        config = PeerConfig(
            upload_capacity=2 * KIB, min_peer_set=4, max_peer_set=10,
            max_initiated=8,
        )
        watcher = swarm.add_peer(config=config)
        # A first wave of peers; the watcher connects to them.
        wave = [swarm.add_peer(config=fast_config(upload=1 * KIB)) for __ in range(5)]
        swarm.run(5)
        assert watcher.peer_set_size >= 4
        # A second wave joins while the first disappears: the watcher has
        # to learn about them from the tracker to stay connected.
        for peer in wave:
            peer.leave()
        for __ in range(5):
            swarm.add_peer(config=fast_config(upload=1 * KIB))
        swarm.run(120)
        assert watcher.peer_set_size >= 2

    def test_periodic_announce_keeps_tracker_current(self):
        config = SwarmConfig(seed=5, announce_interval=50.0)
        swarm = tiny_swarm(num_pieces=4, swarm_config=config)
        swarm.add_peer(config=fast_config(), is_seed=True)
        before = swarm.tracker.announce_count
        swarm.run(200)
        # started + ~4 periodic announces.
        assert swarm.tracker.announce_count >= before + 3

    def test_completed_event_sent_once(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.add_peer(config=fast_config())
        swarm.run(200)
        assert swarm.tracker.completed_count == 1


class TestPipelining:
    def test_outstanding_requests_bounded(self):
        swarm = tiny_swarm(num_pieces=64)
        swarm.add_peer(config=fast_config(upload=1 * KIB), is_seed=True)
        depth = 5
        leecher = swarm.add_peer(
            config=PeerConfig(upload_capacity=1 * KIB, request_pipeline_depth=depth)
        )
        max_outstanding = 0

        def probe(now):
            nonlocal max_outstanding
            for connection in leecher.connections.values():
                max_outstanding = max(max_outstanding, len(connection.outstanding))

        swarm.on_tick(probe)
        swarm.run(60)
        assert 0 < max_outstanding <= depth

    def test_requests_resent_after_choke(self):
        """Blocks lost to a choke are re-requested (from anyone)."""
        swarm = tiny_swarm(num_pieces=32)
        seed = swarm.add_peer(config=fast_config(upload=2 * KIB), is_seed=True)
        # Enough competition that the leecher gets choked sometimes.
        for __ in range(6):
            swarm.add_peer(config=fast_config(upload=2 * KIB))
        slow = swarm.add_peer(config=fast_config(upload=0.5 * KIB))
        swarm.run(2000)
        assert slow.bitfield.is_complete()


class TestEndGame:
    def test_cancels_sent_in_endgame(self):
        """With several sources, end game duplicates requests and then
        cancels the losers."""
        from repro.instrumentation import Instrumentation

        swarm = tiny_swarm(num_pieces=8, seed=3)
        for __ in range(3):
            swarm.add_peer(config=fast_config(upload=1 * KIB), is_seed=True)
        trace = Instrumentation()
        swarm.add_peer(config=fast_config(), observer=trace)
        trace.start_sampling()
        swarm.run(300)
        assert trace.endgame_at is not None
        # Count CANCEL messages in the observer's sent stream indirectly:
        # duplicated blocks mean total received block bytes can slightly
        # exceed the content; the cancel path keeps the overshoot tiny.
        content = swarm.metainfo.geometry.total_size
        received = sum(length for *__, length in trace.block_arrivals)
        assert received <= content + 8 * swarm.metainfo.geometry.block_size

    def test_duplicate_block_delivery_ignored(self):
        """If two peers race a block before the cancel lands, the piece
        still completes exactly once."""
        from repro.instrumentation import Instrumentation

        swarm = tiny_swarm(num_pieces=4, seed=9)
        for __ in range(4):
            swarm.add_peer(config=fast_config(upload=1 * KIB), is_seed=True)
        trace = Instrumentation()
        local = swarm.add_peer(config=fast_config(), observer=trace)
        trace.start_sampling()
        swarm.run(300)
        completed = [piece for __, piece in trace.piece_completions]
        assert sorted(completed) == sorted(set(completed))
        assert local.bitfield.is_complete()


class TestOptimisticUnchoke:
    def test_newcomer_with_nothing_gets_bootstrapped(self):
        """A peer with no pieces cannot earn regular unchokes; only the
        optimistic unchoke (or a seed's rotation) can bootstrap it."""
        swarm = tiny_swarm(num_pieces=32, seed=15)
        # No seeds at all after the start: a pure leecher economy.
        veterans = []
        from repro.protocol.bitfield import Bitfield
        from random import Random

        rng = Random(4)
        for __ in range(8):
            have = rng.sample(range(32), 24)
            veterans.append(
                swarm.add_peer(
                    config=fast_config(upload=2 * KIB),
                    initial_bitfield=Bitfield(32, have=have),
                )
            )
        newcomer = swarm.add_peer(config=fast_config(upload=2 * KIB))
        swarm.run(120)
        assert newcomer.total_downloaded > 0

    def test_seed_ignores_upload_from_peers(self):
        """A seed never downloads: its connections carry upload only."""
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.add_peer(config=fast_config())
        swarm.run(120)
        assert seed.total_downloaded == 0.0


class TestMessageLegality:
    def test_request_while_choked_is_dropped(self):
        swarm = tiny_swarm(num_pieces=4)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        conn = seed.connections[leecher.address]
        assert conn.am_choking
        seed._handle_request(conn, Request(piece=0, offset=0, length=1024))
        assert len(conn.upload_queue) == 0

    def test_request_for_missing_piece_is_dropped(self):
        swarm = tiny_swarm(num_pieces=4)
        a = swarm.add_peer(config=fast_config())
        b = swarm.add_peer(config=fast_config())
        conn = a.connections[b.address]
        conn.am_choking = False
        a._handle_request(conn, Request(piece=0, offset=0, length=1024))
        assert len(conn.upload_queue) == 0

    def test_cancel_for_unqueued_block_is_noop(self):
        swarm = tiny_swarm(num_pieces=4)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        conn = seed.connections[leecher.address]
        seed._handle_cancel(conn, Cancel(piece=0, offset=0, length=1024))
        assert len(conn.upload_queue) == 0

    def test_duplicate_request_not_queued_twice(self):
        swarm = tiny_swarm(num_pieces=4)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        conn = seed.connections[leecher.address]
        conn.am_choking = False
        message = Request(piece=0, offset=0, length=1024)
        seed._handle_request(conn, message)
        seed._handle_request(conn, message)
        assert len(conn.upload_queue) == 1
