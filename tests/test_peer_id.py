"""Tests for peer identifiers and the (IP, client-ID) identification rule."""

from random import Random

import pytest

from repro.protocol.peer_id import (
    PeerId,
    PeerIdentity,
    identify,
    make_peer_id,
    parse_client_id,
)


class TestMakePeerId:
    def test_mainline_style(self):
        peer_id = make_peer_id("M4-0-2", Random(1))
        assert len(peer_id.raw) == 20
        assert peer_id.raw.startswith(b"M4-0-2-")
        assert peer_id.client_id == "M4-0-2"

    def test_azureus_style(self):
        peer_id = make_peer_id("-AZ2504", Random(1))
        assert peer_id.raw.startswith(b"-AZ2504-")
        assert peer_id.client_id == "-AZ2504"

    def test_random_suffix_changes_on_restart(self):
        rng = Random(1)
        first = make_peer_id("M4-0-2", rng)
        second = make_peer_id("M4-0-2", rng)
        assert first.raw != second.raw
        assert first.client_id == second.client_id

    def test_deterministic_given_seed(self):
        assert make_peer_id("M4-0-2", Random(7)).raw == make_peer_id(
            "M4-0-2", Random(7)
        ).raw

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            make_peer_id("M" * 25, Random(1))


class TestParseClientId:
    def test_mainline(self):
        assert parse_client_id(b"M4-0-2--abcdefghijkl") == "M4-0-2"

    def test_mainline_major_only(self):
        assert parse_client_id(b"M4-abcdefghijklmnopq") == "M4"

    def test_azureus(self):
        assert parse_client_id(b"-AZ2504-abcdefghijkl") == "-AZ2504"

    def test_unknown_format(self):
        assert parse_client_id(b"\x00" * 20) is None

    def test_wrong_length(self):
        assert parse_client_id(b"M4-0-2-") is None


class TestIdentity:
    def test_same_ip_same_client_is_same_identity(self):
        rng = Random(1)
        first = make_peer_id("M4-0-2", rng)
        second = make_peer_id("M4-0-2", rng)  # "restarted" client
        assert identify("1.2.3.4", first.raw) == identify("1.2.3.4", second.raw)

    def test_same_ip_different_client_differs(self):
        rng = Random(1)
        mainline = make_peer_id("M4-0-2", rng)
        azureus = make_peer_id("-AZ2504", rng)
        assert identify("1.2.3.4", mainline.raw) != identify("1.2.3.4", azureus.raw)

    def test_different_ip_differs(self):
        rng = Random(1)
        peer_id = make_peer_id("M4-0-2", rng)
        assert identify("1.2.3.4", peer_id.raw) != identify("1.2.3.5", peer_id.raw)

    def test_identity_fields(self):
        identity = identify("10.0.0.1", b"M4-0-2--abcdefghijkl")
        assert identity == PeerIdentity(ip="10.0.0.1", client_id="M4-0-2")


class TestPeerIdValidation:
    def test_raw_must_be_20_bytes(self):
        with pytest.raises(ValueError):
            PeerId(raw=b"short", client_id="x")
