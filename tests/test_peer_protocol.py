"""Integration tests of the peer protocol over the simulator.

These drive small real swarms end to end: connection establishment,
interest signalling, choke rounds, block transfer, piece completion and
the seed transition.
"""

import pytest

from repro.core.choke import SeedChoker
from repro.protocol.bitfield import Bitfield
from repro.sim.config import KIB, PeerConfig
from repro.sim.peer import PeerState

from tests.conftest import fast_config, tiny_swarm


class TestOneSeedOneLeecher:
    def test_full_download(self):
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(300)
        assert leecher.bitfield.is_complete()
        assert leecher.state is PeerState.SEED

    def test_transfer_time_respects_seed_capacity(self):
        # 8 pieces x 4 kB = 32 kB at 2 kB/s: at least 16 s, and the choke
        # round cadence adds a delay before the first unchoke.
        swarm = tiny_swarm(num_pieces=8)
        swarm.add_peer(config=fast_config(upload=2 * KIB), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(10)
        assert not leecher.bitfield.is_complete()
        result = swarm.run(400)
        completion = result.completions[leecher.address]
        assert completion >= 16.0

    def test_byte_accounting_consistent(self):
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(300)
        content = swarm.metainfo.geometry.total_size
        assert leecher.total_downloaded == pytest.approx(content)
        assert seed.total_uploaded == pytest.approx(content)

    def test_seed_never_interested(self):
        swarm = tiny_swarm(num_pieces=4)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.add_peer(config=fast_config())
        swarm.run(50)
        for connection in seed.connections.values():
            assert not connection.am_interested

    def test_leecher_closes_seed_connections_on_completion(self):
        swarm = tiny_swarm(num_pieces=4)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(300)
        assert leecher.is_seed
        assert seed.address not in leecher.connections
        assert leecher.address not in seed.connections


class TestHashVerification:
    def test_completes_with_real_sha1_checks(self):
        swarm = tiny_swarm(num_pieces=4, verify_hashes=True)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(300)
        assert leecher.bitfield.is_complete()

    def test_corrupted_piece_is_redownloaded(self):
        swarm = tiny_swarm(num_pieces=4, verify_hashes=True)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())

        # Sabotage the first served block of piece 0 once.
        original = seed.metainfo.piece_payload
        state = {"corrupted": False}

        def corrupting(piece):
            data = original(piece)
            if piece == 0 and not state["corrupted"]:
                state["corrupted"] = True
                return b"\x00" * len(data)
            return data

        seed.metainfo = type(seed.metainfo).synthetic(
            "tiny", seed.metainfo.geometry.total_size,
            seed.metainfo.geometry.piece_size, seed.metainfo.geometry.block_size,
        )
        seed.metainfo.piece_payload = corrupting  # type: ignore[assignment]

        from repro.instrumentation import Instrumentation

        observer = Instrumentation()
        observer.on_attached(leecher)
        leecher.observer = observer
        swarm.run(400)
        assert leecher.bitfield.is_complete()
        assert len(observer.hash_failures) >= 1
        assert observer.hash_failures[0][1] == 0


class TestPeerSetManagement:
    def test_max_peer_set_respected(self):
        swarm = tiny_swarm(num_pieces=4)
        config = PeerConfig(upload_capacity=8 * KIB, max_peer_set=5, min_peer_set=2)
        hub = swarm.add_peer(config=config, is_seed=True)
        for __ in range(12):
            swarm.add_peer(config=fast_config())
        swarm.run(60)
        assert hub.peer_set_size <= 5

    def test_max_initiated_respected(self):
        swarm = tiny_swarm(num_pieces=4)
        for __ in range(30):
            swarm.add_peer(config=fast_config(), is_seed=True, join=True)
        config = PeerConfig(
            upload_capacity=8 * KIB, max_initiated=10, max_peer_set=80, min_peer_set=20
        )
        joiner = swarm.add_peer(config=config)
        assert joiner.initiated_count <= 10

    def test_no_seed_to_seed_connections(self):
        swarm = tiny_swarm(num_pieces=4)
        a = swarm.add_peer(config=fast_config(), is_seed=True)
        b = swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.run(50)
        assert b.address not in a.connections
        assert a.address not in b.connections

    def test_departure_cleans_both_sides(self):
        swarm = tiny_swarm(num_pieces=4)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(5)
        assert leecher.address in seed.connections
        leecher.leave()
        assert leecher.address not in seed.connections
        assert not leecher.online
        assert leecher.address not in swarm.peers

    def test_seeding_time_departure(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config(seeding_time=30.0))
        result = swarm.run(600)
        assert leecher.address in result.departures
        completion = result.completions[leecher.address]
        assert result.departures[leecher.address] == pytest.approx(
            completion + 30.0, abs=1.0
        )


class TestInterestSignalling:
    def test_interest_tracks_bitfields(self):
        swarm = tiny_swarm(num_pieces=4)
        a = swarm.add_peer(
            config=fast_config(), initial_bitfield=Bitfield(4, have=[0, 1])
        )
        b = swarm.add_peer(
            config=fast_config(), initial_bitfield=Bitfield(4, have=[0])
        )
        swarm.run(2)
        conn_ab = a.connections[b.address]
        conn_ba = b.connections[a.address]
        assert not conn_ab.am_interested  # b's pieces are a subset of a's
        assert conn_ba.am_interested

    def test_not_interested_sent_when_last_needed_piece_arrives(self):
        swarm = tiny_swarm(num_pieces=2)
        swarm.add_peer(config=fast_config(), is_seed=True)
        partial = swarm.add_peer(
            config=fast_config(), initial_bitfield=Bitfield(2, have=[0])
        )
        other = swarm.add_peer(
            config=fast_config(), initial_bitfield=Bitfield(2, have=[0])
        )
        swarm.run(300)
        # Both finished; no leecher-leecher interest remains anywhere.
        assert partial.is_seed and other.is_seed


class TestChokeBehaviour:
    def test_active_peer_set_bounded(self):
        swarm = tiny_swarm(num_pieces=16)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(12):
            swarm.add_peer(config=fast_config(upload=1 * KIB))
        max_active = 0
        def sample(now):
            nonlocal max_active
            active = sum(
                1
                for c in seed.connections.values()
                if not c.am_choking and c.peer_interested
            )
            max_active = max(max_active, active)
        swarm.on_tick(sample)
        swarm.run(120)
        assert max_active <= seed.config.unchoke_slots

    def test_choking_clears_upload_queue(self):
        swarm = tiny_swarm(num_pieces=16)
        seed = swarm.add_peer(config=fast_config(upload=1 * KIB), is_seed=True)
        for __ in range(6):
            swarm.add_peer(config=fast_config(upload=1 * KIB))
        swarm.run(200)
        for connection in seed.connections.values():
            if connection.am_choking:
                assert len(connection.upload_queue) == 0

    def test_seed_rotates_service(self):
        """Under the new seed choke, every interested leecher eventually
        receives bytes from the seed."""
        swarm = tiny_swarm(num_pieces=32)
        seed = swarm.add_peer(
            config=fast_config(upload=4 * KIB),
            is_seed=True,
            seed_choker=SeedChoker(),
        )
        leechers = [
            # Zero-upload leechers: only the seed serves them, so receipt
            # proves the seed's rotation reached everyone.
            swarm.add_peer(config=fast_config(upload=0.0)) for __ in range(8)
        ]
        swarm.run(600)
        served = [leecher for leecher in leechers if leecher.total_downloaded > 0]
        assert len(served) == len(leechers)


class TestDeterminism:
    def test_identical_runs(self):
        def run():
            swarm = tiny_swarm(num_pieces=8, seed=123)
            swarm.add_peer(config=fast_config(), is_seed=True)
            for __ in range(5):
                swarm.add_peer(config=fast_config(upload=2 * KIB))
            result = swarm.run(400)
            return sorted(result.completions.items())

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            swarm = tiny_swarm(num_pieces=8, seed=seed)
            swarm.add_peer(config=fast_config(), is_seed=True)
            for __ in range(5):
                swarm.add_peer(config=fast_config(upload=2 * KIB))
            result = swarm.run(400)
            return sorted(result.completions.items())

        assert run(1) != run(2)
