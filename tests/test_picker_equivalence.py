"""Old-vs-new equivalence: the indexed picker must be a pure speedup.

The rarity-bucket index (``use_rarity_index=True``, the default) claims
to be behaviour-preserving: given the same seed, a swarm of indexed
pickers must execute the *identical* schedule as a swarm of naive
pickers — same RNG consumption, same piece selections, same completion
order, same rarest-pieces-set trajectory.  These tests run the same
seeded scenario twice, once per mode, and compare the traces event for
event.  The engine-throughput benchmark relies on this equivalence to
call its naive/indexed timing comparison apples-to-apples.
"""

from random import Random

import pytest

from repro.protocol.metainfo import make_metainfo
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm


def build_swarm(seed, num_pieces, num_leechers, use_rarity_index, churn=False):
    metainfo = make_metainfo(
        "equivalence-%d" % seed,
        num_pieces=num_pieces,
        piece_size=4 * KIB,
        block_size=1 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=seed))
    rng = Random(seed)

    def config():
        return PeerConfig(
            upload_capacity=rng.choice([2, 4, 8]) * KIB,
            use_rarity_index=use_rarity_index,
            seeding_time=(rng.choice([20.0, None]) if churn else None),
        )

    swarm.add_peer(config=config(), is_seed=True)
    for __ in range(num_leechers):
        delay = rng.uniform(0.0, 30.0)
        swarm.schedule_arrival(delay, config=config())
    return swarm


def run_traced(seed, num_pieces, num_leechers, use_rarity_index, churn=False):
    """Run one swarm, recording every piece replication and per-tick
    rarest-pieces-set snapshots of every online peer."""
    swarm = build_swarm(seed, num_pieces, num_leechers, use_rarity_index, churn)
    replications = []
    original = swarm.on_piece_replicated

    def record(peer, piece):
        replications.append((swarm.simulator.now, peer.address, piece))
        original(peer, piece)

    swarm.on_piece_replicated = record
    rarest_snapshots = []

    def snapshot(now):
        rarest_snapshots.append(
            [
                (address, swarm.peers[address].picker.rarest_pieces_set())
                for address in sorted(swarm.peers)
            ]
        )

    swarm.on_tick(snapshot)
    result = swarm.run(250)
    final_bitfields = {
        address: sorted(peer.bitfield.have_set)
        for address, peer in swarm.peers.items()
    }
    return {
        "replications": replications,
        "rarest_snapshots": rarest_snapshots,
        "completions": sorted(result.completions.items()),
        "bytes_moved": result.bytes_moved,
        "final_bitfields": final_bitfields,
    }


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_indexed_and_naive_traces_identical(seed):
    naive = run_traced(seed, num_pieces=16, num_leechers=5, use_rarity_index=False)
    indexed = run_traced(seed, num_pieces=16, num_leechers=5, use_rarity_index=True)
    # Piece completions happen at the same instants, by the same peers,
    # in the same order...
    assert indexed["replications"] == naive["replications"]
    # ...the availability view evolves identically tick for tick...
    assert indexed["rarest_snapshots"] == naive["rarest_snapshots"]
    # ...and the aggregate outcome is bit-identical.
    assert indexed["completions"] == naive["completions"]
    assert indexed["bytes_moved"] == naive["bytes_moved"]
    assert indexed["final_bitfields"] == naive["final_bitfields"]


def test_traces_identical_under_churn():
    """Seed departures exercise peer_left / on_peer_gone index paths."""
    naive = run_traced(3, num_pieces=12, num_leechers=4, use_rarity_index=False, churn=True)
    indexed = run_traced(3, num_pieces=12, num_leechers=4, use_rarity_index=True, churn=True)
    assert indexed["replications"] == naive["replications"]
    assert indexed["rarest_snapshots"] == naive["rarest_snapshots"]
    assert indexed["final_bitfields"] == naive["final_bitfields"]


def test_modes_are_actually_different_code_paths():
    """Guard against the equivalence test passing vacuously: the two
    modes must report different `uses_rarity_index` flags."""
    naive_swarm = build_swarm(1, 8, 1, use_rarity_index=False)
    indexed_swarm = build_swarm(1, 8, 1, use_rarity_index=True)
    assert all(
        not peer.picker.uses_rarity_index
        for peer in naive_swarm.peers.values()
    )
    assert all(
        peer.picker.uses_rarity_index
        for peer in indexed_swarm.peers.values()
    )
