"""Old-vs-new equivalence: the indexed picker must be a pure speedup.

The rarity-bucket index (``use_rarity_index=True``, the default) claims
to be behaviour-preserving: given the same seed, a swarm of indexed
pickers must execute the *identical* schedule as a swarm of naive
pickers — same RNG consumption, same piece selections, same completion
order, same rarest-pieces-set trajectory.  These tests run the same
seeded scenario twice, once per mode, and compare the traces event for
event.  The engine-throughput benchmark relies on this equivalence to
call its naive/indexed timing comparison apples-to-apples.
"""

from random import Random

import pytest

from repro.core.rarest_first import make_selector
from repro.protocol.metainfo import make_metainfo
from repro.sim.bandwidth import HAVE_NUMPY
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.sim.swarm import Swarm

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

#: Every built-in strategy (with non-default parameters for the
#: parameterised ones), as make_selector specs.
ALL_SELECTOR_SPECS = [
    "rarest-first",
    "mode-suppression:suppression=0.7",
    "random",
    "sequential",
    "seq-window:window=6",
    "pfs:urgency=0.9,rarity_bias=1.0",
]

#: The fully de-optimised engine: no availability matrix, unbatched
#: HAVEs, reference allocator, heap queue (mirrors
#: test_allocator_equivalence.REFERENCE_EXTRA).
REFERENCE_EXTRA = {
    "availability_backend": "index",
    "have_fanout": "unbatched",
    "allocator": "reference",
    "event_queue": "heap",
}


def build_swarm(
    seed,
    num_pieces,
    num_leechers,
    use_rarity_index,
    churn=False,
    selector_spec=None,
    extra=None,
):
    metainfo = make_metainfo(
        "equivalence-%d" % seed,
        num_pieces=num_pieces,
        piece_size=4 * KIB,
        block_size=1 * KIB,
    )
    swarm = Swarm(metainfo, SwarmConfig(seed=seed, extra=dict(extra or {})))
    rng = Random(seed)

    def config():
        return PeerConfig(
            upload_capacity=rng.choice([2, 4, 8]) * KIB,
            use_rarity_index=use_rarity_index,
            seeding_time=(rng.choice([20.0, None]) if churn else None),
        )

    def kwargs():
        # A fresh selector per peer: the playback-aware strategies carry
        # per-peer position bindings and must never be shared.
        if selector_spec is None:
            return {}
        return {"selector": make_selector(selector_spec)}

    swarm.add_peer(config=config(), is_seed=True, **kwargs())
    for __ in range(num_leechers):
        delay = rng.uniform(0.0, 30.0)
        swarm.schedule_arrival(delay, config=config(), **kwargs())
    return swarm


def run_traced(
    seed,
    num_pieces,
    num_leechers,
    use_rarity_index,
    churn=False,
    selector_spec=None,
    extra=None,
):
    """Run one swarm, recording every piece replication and per-tick
    rarest-pieces-set snapshots of every online peer."""
    swarm = build_swarm(
        seed,
        num_pieces,
        num_leechers,
        use_rarity_index,
        churn,
        selector_spec=selector_spec,
        extra=extra,
    )
    replications = []
    original = swarm.on_piece_replicated

    def record(peer, piece):
        replications.append((swarm.simulator.now, peer.address, piece))
        original(peer, piece)

    swarm.on_piece_replicated = record
    rarest_snapshots = []

    def snapshot(now):
        rarest_snapshots.append(
            [
                (address, swarm.peers[address].picker.rarest_pieces_set())
                for address in sorted(swarm.peers)
            ]
        )

    swarm.on_tick(snapshot)
    result = swarm.run(250)
    final_bitfields = {
        address: sorted(peer.bitfield.have_set)
        for address, peer in swarm.peers.items()
    }
    return {
        "replications": replications,
        "rarest_snapshots": rarest_snapshots,
        "completions": sorted(result.completions.items()),
        "bytes_moved": result.bytes_moved,
        "final_bitfields": final_bitfields,
    }


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_indexed_and_naive_traces_identical(seed):
    naive = run_traced(seed, num_pieces=16, num_leechers=5, use_rarity_index=False)
    indexed = run_traced(seed, num_pieces=16, num_leechers=5, use_rarity_index=True)
    # Piece completions happen at the same instants, by the same peers,
    # in the same order...
    assert indexed["replications"] == naive["replications"]
    # ...the availability view evolves identically tick for tick...
    assert indexed["rarest_snapshots"] == naive["rarest_snapshots"]
    # ...and the aggregate outcome is bit-identical.
    assert indexed["completions"] == naive["completions"]
    assert indexed["bytes_moved"] == naive["bytes_moved"]
    assert indexed["final_bitfields"] == naive["final_bitfields"]


def test_traces_identical_under_churn():
    """Seed departures exercise peer_left / on_peer_gone index paths."""
    naive = run_traced(3, num_pieces=12, num_leechers=4, use_rarity_index=False, churn=True)
    indexed = run_traced(3, num_pieces=12, num_leechers=4, use_rarity_index=True, churn=True)
    assert indexed["replications"] == naive["replications"]
    assert indexed["rarest_snapshots"] == naive["rarest_snapshots"]
    assert indexed["final_bitfields"] == naive["final_bitfields"]


@pytest.mark.parametrize("spec", ALL_SELECTOR_SPECS)
def test_indexed_equals_naive_for_every_selector(spec):
    """Every built-in strategy's ``select_indexed`` must consume the
    same RNG and pick the same pieces as its naive ``select``."""
    naive = run_traced(
        5, num_pieces=16, num_leechers=5, use_rarity_index=False,
        selector_spec=spec,
    )
    indexed = run_traced(
        5, num_pieces=16, num_leechers=5, use_rarity_index=True,
        selector_spec=spec,
    )
    assert indexed["replications"] == naive["replications"]
    assert indexed["rarest_snapshots"] == naive["rarest_snapshots"]
    assert indexed["completions"] == naive["completions"]
    assert indexed["bytes_moved"] == naive["bytes_moved"]
    assert indexed["final_bitfields"] == naive["final_bitfields"]


@needs_numpy
@pytest.mark.parametrize("spec", ALL_SELECTOR_SPECS)
def test_fast_engine_equals_reference_for_every_selector(spec):
    """The mega-swarm fast paths (availability matrix + fused HAVE
    fan-out + numpy allocator) must stay trace-invisible for *every*
    strategy — non-rarest selectors take the matrix backend's candidate
    scan instead of the vectorized rarest-first kernel."""
    reference = run_traced(
        9, num_pieces=16, num_leechers=5, use_rarity_index=True,
        selector_spec=spec, extra=REFERENCE_EXTRA,
    )
    fast = run_traced(
        9, num_pieces=16, num_leechers=5, use_rarity_index=True,
        selector_spec=spec, extra={},
    )
    assert fast["replications"] == reference["replications"]
    assert fast["rarest_snapshots"] == reference["rarest_snapshots"]
    assert fast["completions"] == reference["completions"]
    assert fast["bytes_moved"] == reference["bytes_moved"]
    assert fast["final_bitfields"] == reference["final_bitfields"]


@needs_numpy
def test_sequential_selector_on_wheel_queue_with_numpy_allocator():
    """Regression: a ``uses_rarity_index``-less strategy on the full
    fast engine (wheel queue, numpy allocator, matrix backend) used to
    be hijacked by the vectorized rarest-first kernel.  It must instead
    run the strategy faithfully and match the reference engine."""
    fast = run_traced(
        11, num_pieces=12, num_leechers=4, use_rarity_index=True,
        selector_spec="sequential",
        extra={
            "event_queue": "wheel",
            "allocator": "numpy",
            "availability_backend": "matrix",
        },
    )
    reference = run_traced(
        11, num_pieces=12, num_leechers=4, use_rarity_index=False,
        selector_spec="sequential", extra=REFERENCE_EXTRA,
    )
    assert fast["replications"] == reference["replications"]
    assert fast["completions"] == reference["completions"]
    assert fast["final_bitfields"] == reference["final_bitfields"]
    # And the run actually downloads: the old dispatch either raised or
    # silently fell back to rarest first (different replication order).
    assert any(fast["final_bitfields"].values())


def test_modes_are_actually_different_code_paths():
    """Guard against the equivalence test passing vacuously: the two
    modes must report different `uses_rarity_index` flags."""
    naive_swarm = build_swarm(1, 8, 1, use_rarity_index=False)
    indexed_swarm = build_swarm(1, 8, 1, use_rarity_index=True)
    assert all(
        not peer.picker.uses_rarity_index
        for peer in naive_swarm.peers.values()
    )
    assert all(
        peer.picker.uses_rarity_index
        for peer in indexed_swarm.peers.values()
    )
