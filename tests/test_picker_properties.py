"""Randomised invariant checks for the incremental rarity index.

A seeded ``random.Random`` drives a PiecePicker through arbitrary
interleavings of the operations a real session produces — peers joining
and leaving, HAVE messages, block requests, block receipts, hash
failures — and after every step the incremental structures are compared
against a from-scratch recount:

* availability counts are non-negative and equal the sum of the
  tracked remote bitfields;
* the all-pieces rarity index partitions the torrent's pieces and
  buckets each piece under its exact availability count;
* the wanted-pieces index holds exactly the missing, not-yet-started
  pieces, also under their exact counts;
* every partial piece's blocks are partitioned between received,
  requested and unrequested, with unrequested sorted in descending
  index order (the O(1)-pop representation);
* the O(1) end-game trigger (open-partials counter + active/missing
  counts) agrees with the naive every-missing-piece scan.

The driver uses only the standard library so the invariants stay
reproducible from the seed alone.
"""

from random import Random

import pytest

from repro.core.piece_picker import PiecePicker
from repro.core.rarest_first import RarestFirstSelector
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import PieceGeometry

NUM_PIECES = 16
BLOCKS_PER_PIECE = 3
BLOCK = 16


def make_picker(seed):
    geometry = PieceGeometry(
        NUM_PIECES * BLOCKS_PER_PIECE * BLOCK,
        piece_size=BLOCKS_PER_PIECE * BLOCK,
        block_size=BLOCK,
    )
    bitfield = Bitfield(NUM_PIECES)
    picker = PiecePicker(
        geometry, bitfield, RarestFirstSelector(), Random(seed)
    )
    return picker, bitfield, geometry


def check_invariants(picker, bitfield, remotes):
    # Availability: non-negative and exactly the recount over remotes.
    expected = [0] * NUM_PIECES
    for remote in remotes.values():
        for piece in remote.have_indices():
            expected[piece] += 1
    availability = list(picker.availability)
    assert all(count >= 0 for count in availability)
    assert availability == expected

    # All-pieces index: buckets partition the torrent, each piece filed
    # under its exact count.
    snapshot = picker._all_index.snapshot()
    assert all(bucket for bucket in snapshot.values())  # no empty buckets
    seen = set()
    for count, bucket in snapshot.items():
        assert not bucket & seen  # disjoint
        seen |= bucket
        for piece in bucket:
            assert availability[piece] == count
    assert seen == set(range(NUM_PIECES))

    # Wanted index: exactly the missing, not-started pieces.
    active = set(picker.active_pieces)
    wanted = {
        piece
        for piece in range(NUM_PIECES)
        if not bitfield.has(piece) and piece not in active
    }
    wanted_snapshot = picker._wanted_index.snapshot()
    filed = set()
    for count, bucket in wanted_snapshot.items():
        filed |= bucket
        for piece in bucket:
            assert availability[piece] == count
    assert filed == wanted

    # Rarest pieces set agrees with a naive scan of the counts.
    m, pieces = picker.rarest_pieces_set()
    assert m == min(availability)
    assert pieces == [p for p in range(NUM_PIECES) if availability[p] == m]

    # Block partition per partial piece, and the open-partials counter.
    open_partials = 0
    for piece in active:
        partial = picker._active[piece]
        received = set(partial.received)
        requested = set(partial.requested)
        unrequested = set(partial.unrequested)
        assert not received & requested
        assert not received & unrequested
        assert not requested & unrequested
        assert received | requested | unrequested == set(
            range(len(partial.blocks))
        )
        assert partial.unrequested == sorted(partial.unrequested, reverse=True)
        if partial.unrequested:
            open_partials += 1
    assert picker._open_partials == open_partials

    # O(1) end-game trigger vs the naive every-missing-piece scan.
    naive_all_requested = all(
        piece in active and not picker._active[piece].unrequested
        for piece in bitfield.missing_indices()
    )
    assert picker._all_blocks_requested() == naive_all_requested


@pytest.mark.parametrize("seed", range(8))
def test_random_operations_preserve_invariants(seed):
    rng = Random(seed)
    picker, bitfield, geometry = make_picker(seed)
    remotes = {}  # peer key -> its tracked bitfield
    next_peer = 0

    def random_remote():
        pieces = rng.sample(
            range(NUM_PIECES), rng.randint(1, NUM_PIECES)
        )
        return Bitfield(NUM_PIECES, have=pieces)

    for __ in range(300):
        op = rng.random()
        if op < 0.15 or not remotes:
            key = "peer-%d" % next_peer
            next_peer += 1
            remotes[key] = random_remote()
            picker.peer_joined(remotes[key])
        elif op < 0.25 and len(remotes) > 1:
            key = rng.choice(sorted(remotes))
            picker.on_peer_gone(key)
            picker.peer_left(remotes.pop(key))
        elif op < 0.40:
            key = rng.choice(sorted(remotes))
            missing = [
                piece
                for piece in range(NUM_PIECES)
                if not remotes[key].has(piece)
            ]
            if missing:
                piece = rng.choice(missing)
                remotes[key].set(piece)
                picker.remote_has(piece)
        elif op < 0.80:
            key = rng.choice(sorted(remotes))
            block = picker.next_request(remotes[key], key)
            if block is not None and rng.random() < 0.8:
                picker.on_block_received(block, key)
        elif op < 0.90:
            have = sorted(bitfield.have_set)
            if have:
                picker.reset_piece(rng.choice(have))
        else:
            key = rng.choice(sorted(remotes))
            released = picker.on_peer_gone(key)
            offsets = [b.offset for b in released]
            assert offsets == sorted(offsets) or len(set(
                b.piece for b in released
            )) > 1
        check_invariants(picker, bitfield, remotes)

    assert next_peer > 0  # the driver actually exercised the picker
