"""Tests for the piece picker: availability accounting, random-first,
strict priority, end game, and failure paths."""

from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.piece_picker import PiecePicker
from repro.core.rarest_first import RarestFirstSelector
from repro.protocol.bitfield import Bitfield
from repro.protocol.metainfo import PieceGeometry


def make_picker(
    num_pieces=8,
    blocks_per_piece=4,
    have=(),
    selector=None,
    seed=1,
    random_first_threshold=4,
    strict_priority=True,
    endgame_enabled=True,
):
    block = 16
    geometry = PieceGeometry(
        num_pieces * blocks_per_piece * block,
        piece_size=blocks_per_piece * block,
        block_size=block,
    )
    bitfield = Bitfield(num_pieces, have=have)
    picker = PiecePicker(
        geometry,
        bitfield,
        selector or RarestFirstSelector(),
        Random(seed),
        random_first_threshold=random_first_threshold,
        strict_priority=strict_priority,
        endgame_enabled=endgame_enabled,
    )
    return picker, bitfield, geometry


def full_remote(num_pieces=8):
    return Bitfield.full(num_pieces)


def complete_piece(picker, geometry, piece, peer="p"):
    """Receive every block of *piece* (assumes blocks already requested)."""
    for block in geometry.blocks(piece):
        picker.on_block_received(block, peer)


class TestAvailability:
    def test_join_and_leave(self):
        picker, __, __ = make_picker()
        remote = Bitfield(8, have=[0, 3])
        picker.peer_joined(remote)
        assert picker.availability == (1, 0, 0, 1, 0, 0, 0, 0)
        picker.peer_left(remote)
        assert picker.availability == (0,) * 8

    def test_have_message(self):
        picker, __, __ = make_picker()
        picker.remote_has(5)
        picker.remote_has(5)
        assert picker.availability[5] == 2

    def test_rarest_pieces_set(self):
        picker, __, __ = make_picker(num_pieces=4)
        picker.peer_joined(Bitfield(4, have=[0, 1]))
        picker.peer_joined(Bitfield(4, have=[0]))
        m, pieces = picker.rarest_pieces_set()
        assert m == 0
        assert pieces == [2, 3]

    def test_negative_availability_is_an_error(self):
        picker, __, __ = make_picker()
        with pytest.raises(RuntimeError):
            picker.peer_left(Bitfield(8, have=[0]))


class TestRandomFirstPolicy:
    def test_random_before_threshold(self):
        """Below 4 pieces the pick ignores rarity (it is random)."""
        picks = set()
        for seed in range(30):
            picker, __, geometry = make_picker(seed=seed, num_pieces=8)
            # piece 7 is by far the rarest
            picker.peer_joined(Bitfield(8, have=list(range(7))))
            picker.peer_joined(Bitfield(8, have=list(range(7))))
            picker.remote_has(7)  # never mind: 7 has 1 copy, others 2
            block = picker.next_request(full_remote(), "p")
            picks.add(block.piece)
        assert len(picks) > 1  # not always the rarest piece

    def test_rarest_after_threshold(self):
        picker, bitfield, geometry = make_picker(num_pieces=8, have=[0, 1, 2, 3])
        picker.peer_joined(Bitfield(8, have=[4, 5, 6, 7]))
        picker.peer_joined(Bitfield(8, have=[4, 5, 6]))
        # piece 7 has 1 copy, pieces 4-6 have 2: rarest first must pick 7.
        block = picker.next_request(full_remote(), "p")
        assert block.piece == 7

    def test_threshold_counts_held_pieces(self):
        picker, bitfield, geometry = make_picker(
            num_pieces=8, have=[0, 1, 2], random_first_threshold=4
        )
        assert bitfield.count == 3  # still below threshold: random pick
        picker.peer_joined(Bitfield(8, have=[3, 4, 5, 6]))
        block = picker.next_request(full_remote(), "p")
        assert block is not None


class TestStrictPriority:
    def test_finishes_started_piece_first(self):
        picker, __, geometry = make_picker(num_pieces=4, have=[])
        picker.peer_joined(full_remote(4))
        first = picker.next_request(full_remote(4), "p")
        second = picker.next_request(full_remote(4), "p")
        assert second.piece == first.piece
        assert second.offset != first.offset

    def test_priority_spans_peers(self):
        picker, __, geometry = make_picker(num_pieces=4)
        picker.peer_joined(full_remote(4))
        first = picker.next_request(full_remote(4), "peer-a")
        second = picker.next_request(full_remote(4), "peer-b")
        assert second.piece == first.piece

    def test_priority_skips_pieces_remote_lacks(self):
        picker, __, geometry = make_picker(num_pieces=4, have=[])
        picker.peer_joined(full_remote(4))
        first = picker.next_request(full_remote(4), "peer-a")
        # peer-b lacks the active piece entirely: must start another one.
        other = Bitfield(4, have=[p for p in range(4) if p != first.piece])
        block = picker.next_request(other, "peer-b")
        assert block.piece != first.piece

    def test_disabled_strict_priority_still_progresses(self):
        picker, __, geometry = make_picker(num_pieces=2, strict_priority=False)
        picker.peer_joined(full_remote(2))
        seen = set()
        for __ in range(8):
            block = picker.next_request(full_remote(2), "p")
            assert block is not None
            seen.add((block.piece, block.offset))
        assert len(seen) == 8  # every block of both pieces requested once


class TestBlockAccounting:
    def test_piece_completion(self):
        picker, bitfield, geometry = make_picker(num_pieces=2)
        picker.peer_joined(full_remote(2))
        blocks = []
        for __ in range(4):
            blocks.append(picker.next_request(full_remote(2), "p"))
        piece = blocks[0].piece
        for block in blocks[:-1]:
            completed, __ = picker.on_block_received(block, "p")
            assert not completed or block is blocks[-1]
        completed, __ = picker.on_block_received(blocks[-1], "p")
        assert completed
        assert bitfield.has(piece)
        assert piece not in picker.active_pieces

    def test_duplicate_block_ignored(self):
        picker, __, geometry = make_picker(num_pieces=2)
        picker.peer_joined(full_remote(2))
        block = picker.next_request(full_remote(2), "p")
        picker.on_block_received(block, "p")
        completed, cancels = picker.on_block_received(block, "p")
        assert not completed
        assert cancels == set()

    def test_block_after_piece_complete_ignored(self):
        picker, bitfield, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        blocks = [picker.next_request(full_remote(1), "p") for __ in range(4)]
        for block in blocks:
            picker.on_block_received(block, "p")
        completed, __ = picker.on_block_received(blocks[0], "q")
        assert not completed

    def test_reset_piece_allows_redownload(self):
        picker, bitfield, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        blocks = [picker.next_request(full_remote(1), "p") for __ in range(4)]
        for block in blocks:
            picker.on_block_received(block, "p")
        assert bitfield.has(0)
        picker.reset_piece(0)
        assert not bitfield.has(0)
        assert picker.next_request(full_remote(1), "p") is not None

    def test_on_peer_gone_releases_requests(self):
        picker, __, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        first = picker.next_request(full_remote(1), "p")
        released = picker.on_peer_gone("p")
        assert first in released
        # The same block is requestable again, by another peer.
        again = picker.next_request(full_remote(1), "q")
        assert again == first

    def test_on_peer_gone_keeps_partial_pieces(self):
        picker, __, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        first = picker.next_request(full_remote(1), "p")
        picker.on_block_received(first, "p")
        second = picker.next_request(full_remote(1), "p")
        picker.on_peer_gone("p")
        # piece has progress: stays active, next request resumes it
        assert picker.active_pieces == [first.piece]

    def test_released_blocks_rerequested_in_offset_order(self):
        """Blocks released by a departure re-enter the unrequested pool in
        offset order, interleaved correctly with never-requested blocks."""
        picker, __, geometry = make_picker(num_pieces=1, blocks_per_piece=6)
        picker.peer_joined(full_remote(1))
        for __ in range(4):  # blocks 0-3 in flight to p, 4-5 unrequested
            picker.next_request(full_remote(1), "p")
        released = picker.on_peer_gone("p")
        assert [b.offset // 16 for b in released] == [0, 1, 2, 3]
        offsets = [
            picker.next_request(full_remote(1), "q").offset // 16
            for __ in range(6)
        ]
        assert offsets == [0, 1, 2, 3, 4, 5]

    def test_partial_release_interleaves_with_unrequested(self):
        picker, __, geometry = make_picker(num_pieces=1, blocks_per_piece=4)
        picker.peer_joined(full_remote(1))
        first = picker.next_request(full_remote(1), "p")   # block 0
        second = picker.next_request(full_remote(1), "q")  # block 1
        picker.on_block_received(first, "p")
        picker.on_peer_gone("q")  # block 1 released, 2-3 never requested
        offsets = [
            picker.next_request(full_remote(1), "r").offset // 16
            for __ in range(3)
        ]
        assert offsets == [1, 2, 3]

    def test_pending_requests_to(self):
        picker, __, geometry = make_picker(num_pieces=2)
        picker.peer_joined(full_remote(2))
        block = picker.next_request(full_remote(2), "p")
        assert picker.pending_requests_to("p") == [block]
        assert picker.pending_requests_to("q") == []


class TestEndGame:
    def test_endgame_triggers_when_all_requested(self):
        picker, __, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        for __ in range(4):
            assert picker.next_request(full_remote(1), "p") is not None
        assert not picker.in_endgame
        block = picker.next_request(full_remote(1), "q")
        assert picker.in_endgame
        assert block is not None  # duplicate request to the second peer

    def test_endgame_does_not_duplicate_to_same_peer(self):
        picker, __, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        for __ in range(4):
            picker.next_request(full_remote(1), "p")
        assert picker.next_request(full_remote(1), "p") is None

    def test_endgame_cancels_other_askers(self):
        picker, __, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        blocks = [picker.next_request(full_remote(1), "p") for __ in range(4)]
        duplicate = picker.next_request(full_remote(1), "q")
        assert duplicate in blocks
        __, cancels = picker.on_block_received(duplicate, "p")
        assert cancels == {"q"}

    def test_endgame_disabled(self):
        picker, __, geometry = make_picker(num_pieces=1, endgame_enabled=False)
        picker.peer_joined(full_remote(1))
        for __ in range(4):
            picker.next_request(full_remote(1), "p")
        assert picker.next_request(full_remote(1), "q") is None
        assert not picker.in_endgame

    def test_no_endgame_while_unrequested_blocks_remain(self):
        picker, __, geometry = make_picker(num_pieces=2)
        picker.peer_joined(full_remote(2))
        picker.next_request(full_remote(2), "p")
        # 7 blocks still unrequested; peer q lacking both pieces gets None
        empty = Bitfield(2)
        assert picker.next_request(empty, "q") is None
        assert not picker.in_endgame

    def test_reset_piece_leaves_endgame(self):
        """A hash-failed piece means whole blocks are unrequested again,
        so the end-game flag must drop until everything is back in flight
        (regression: the flag used to stay stale after reset_piece)."""
        picker, bitfield, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        blocks = [picker.next_request(full_remote(1), "p") for __ in range(4)]
        assert picker.next_request(full_remote(1), "q") is not None
        assert picker.in_endgame
        for block in blocks:
            picker.on_block_received(block, "p")
        assert bitfield.has(0)
        picker.reset_piece(0)  # hash check failed
        assert not picker.in_endgame
        # The re-download starts with fresh (non-duplicate) requests and
        # end game only re-triggers once every block is in flight again.
        seen = set()
        for __ in range(4):
            block = picker.next_request(full_remote(1), "p")
            seen.add(block.offset)
        assert len(seen) == 4
        assert picker.next_request(full_remote(1), "q") is not None
        assert picker.in_endgame

    def test_on_peer_gone_leaves_endgame(self):
        picker, __, geometry = make_picker(num_pieces=1)
        picker.peer_joined(full_remote(1))
        first = picker.next_request(full_remote(1), "p")
        picker.on_block_received(first, "p")
        for __ in range(3):
            picker.next_request(full_remote(1), "p")
        assert picker.next_request(full_remote(1), "q") is not None
        assert picker.in_endgame
        picker.on_peer_gone("p")  # releases p's in-flight blocks
        assert not picker.in_endgame


class TestNothingToRequest:
    def test_uninteresting_remote(self):
        picker, __, geometry = make_picker(num_pieces=2, have=[0])
        remote = Bitfield(2, have=[0])
        assert picker.next_request(remote, "p") is None

    def test_seed_requests_nothing(self):
        picker, __, geometry = make_picker(num_pieces=2, have=[0, 1])
        assert picker.next_request(full_remote(2), "p") is None


@settings(max_examples=30)
@given(
    num_pieces=st.integers(1, 12),
    blocks_per_piece=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_property_full_download_terminates(num_pieces, blocks_per_piece, seed):
    """Requesting and receiving everything completes the bitfield, with
    each block requested exactly once (single peer, no end game dupes)."""
    picker, bitfield, geometry = make_picker(
        num_pieces=num_pieces, blocks_per_piece=blocks_per_piece, seed=seed
    )
    remote = Bitfield.full(num_pieces)
    picker.peer_joined(remote)
    requested = []
    while True:
        block = picker.next_request(remote, "p")
        if block is None:
            break
        requested.append(block)
        picker.on_block_received(block, "p")
    assert bitfield.is_complete()
    assert len(requested) == geometry.total_blocks
    assert len(set(requested)) == len(requested)
