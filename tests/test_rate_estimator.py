"""Tests for the sliding-window rate estimator."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rate_estimator import ByteCounter, RateEstimator


class TestRateEstimator:
    def test_empty_rate_is_zero(self):
        assert RateEstimator(20.0).rate(100.0) == 0.0

    def test_single_sample(self):
        estimator = RateEstimator(20.0)
        estimator.add(0.0, 2000.0)
        assert estimator.rate(0.0) == pytest.approx(100.0)

    def test_rate_divides_by_full_window(self):
        estimator = RateEstimator(10.0)
        estimator.add(0.0, 100.0)
        # Half way through the window the sample still counts fully.
        assert estimator.rate(5.0) == pytest.approx(10.0)

    def test_samples_expire(self):
        estimator = RateEstimator(10.0)
        estimator.add(0.0, 100.0)
        assert estimator.rate(10.1) == 0.0

    def test_expiry_boundary_is_exclusive(self):
        estimator = RateEstimator(10.0)
        estimator.add(0.0, 100.0)
        # A sample exactly window-old has aged out (t - window >= t0).
        assert estimator.rate(10.0) == 0.0

    def test_steady_stream(self):
        estimator = RateEstimator(20.0)
        for t in range(0, 100):
            estimator.add(float(t), 50.0)
        assert estimator.rate(99.0) == pytest.approx(50.0, rel=0.05)

    def test_rate_decays_after_burst(self):
        estimator = RateEstimator(20.0)
        estimator.add(0.0, 1000.0)
        early = estimator.rate(1.0)
        late = estimator.rate(19.0)
        gone = estimator.rate(21.0)
        assert early == late  # constant while inside the window
        assert gone == 0.0

    def test_out_of_order_rejected(self):
        estimator = RateEstimator(20.0)
        estimator.add(5.0, 1.0)
        with pytest.raises(ValueError):
            estimator.add(4.0, 1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            RateEstimator(20.0).add(0.0, -1.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            RateEstimator(0.0)

    def test_reset(self):
        estimator = RateEstimator(20.0)
        estimator.add(0.0, 100.0)
        estimator.reset()
        assert estimator.rate(0.0) == 0.0

    def test_total_in_window(self):
        estimator = RateEstimator(10.0)
        estimator.add(0.0, 30.0)
        estimator.add(5.0, 70.0)
        assert estimator.total_in_window(5.0) == pytest.approx(100.0)
        assert estimator.total_in_window(12.0) == pytest.approx(70.0)


class TestByteCounter:
    def test_total_is_monotonic_and_unwindowed(self):
        counter = ByteCounter(10.0)
        counter.add(0.0, 100.0)
        counter.add(50.0, 100.0)
        assert counter.total == 200.0
        assert counter.rate(50.0) == pytest.approx(10.0)

    def test_rate_matches_estimator(self):
        counter = ByteCounter(20.0)
        counter.add(0.0, 200.0)
        assert counter.rate(0.0) == pytest.approx(10.0)


@given(
    st.lists(
        st.tuples(st.floats(0.0, 1000.0), st.floats(0.0, 1e6)),
        min_size=1,
        max_size=50,
    )
)
def test_property_total_never_negative(samples):
    estimator = RateEstimator(20.0)
    samples = sorted(samples, key=lambda pair: pair[0])
    for t, num_bytes in samples:
        estimator.add(t, num_bytes)
        assert estimator.rate(t) >= 0.0
    last_t = samples[-1][0]
    assert estimator.rate(last_t + 100.0) == 0.0


@given(
    st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
    st.floats(1.0, 50.0),
)
def test_property_window_sum_bound(amounts, window):
    """The windowed total never exceeds the sum of everything added."""
    estimator = RateEstimator(window)
    t = 0.0
    total_added = 0.0
    for amount in amounts:
        estimator.add(t, amount)
        total_added += amount
        assert estimator.total_in_window(t) <= total_added + 1e-9
        t += 1.0
