"""Tests for result rendering and trace export."""

import pytest

from repro.analysis import (
    interarrival_summary,
    peer_set_series,
    replication_series,
    summarize_entropy,
)
from repro.analysis.fairness import leecher_contribution, unchoke_interest_correlation
from repro.instrumentation import Instrumentation
from repro.reporting import (
    ascii_chart,
    ascii_table,
    load_trace_summary,
    save_trace_summary,
    series_to_csv,
    sparkline,
    table_to_csv,
)
from repro.sim.config import KIB

from tests.conftest import fast_config, tiny_swarm


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(["id", "n"], [[1, 10], [2, 300]])
        lines = text.splitlines()
        assert lines[0] == "id   n"
        assert lines[1] == "-- ---"
        assert lines[2] == " 1  10"
        assert lines[3] == " 2 300"

    def test_left_alignment(self):
        text = ascii_table(["name"], [["ab"], ["c"]], align_right=False)
        assert "ab" in text.splitlines()[2]

    def test_empty_rows(self):
        text = ascii_table(["a", "b"], [])
        assert len(text.splitlines()) == 2

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            ascii_table([], [])


class TestSparkline:
    def test_monotone(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestAsciiChart:
    def test_renders_extremes(self):
        text = ascii_chart([0, 1, 2], [10, 20, 30], height=4, width=10)
        assert "30" in text and "10" in text
        assert text.count("*") == 3

    def test_label(self):
        text = ascii_chart([0, 1], [0, 1], label="demo")
        assert text.splitlines()[0] == "demo"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([0], [0, 1])
        with pytest.raises(ValueError):
            ascii_chart([0], [0], height=1)

    def test_empty(self):
        assert "empty" in ascii_chart([], [])


class TestCsv:
    def test_series(self, tmp_path):
        path = tmp_path / "series.csv"
        text = series_to_csv({"t": [0, 1], "v": [2.5, 3.5]}, path)
        assert text == "t,v\n0,2.5\n1,3.5\n"
        assert path.read_text() == text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            series_to_csv({"a": [1], "b": [1, 2]})

    def test_series_empty(self):
        with pytest.raises(ValueError):
            series_to_csv({})

    def test_table(self, tmp_path):
        path = tmp_path / "table.csv"
        text = table_to_csv(["a", "b"], [[1, "x"]], path)
        assert text == "a,b\n1,x\n"
        assert path.read_text() == text


class TestTraceExport:
    @pytest.fixture(scope="class")
    def trace_pair(self, tmp_path_factory):
        swarm = tiny_swarm(num_pieces=16, seed=31)
        swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(4):
            swarm.add_peer(config=fast_config(upload=2 * KIB))
        trace = Instrumentation()
        swarm.add_peer(config=fast_config(upload=4 * KIB), observer=trace)
        trace.start_sampling()
        swarm.run(600)
        trace.finalize()
        path = tmp_path_factory.mktemp("traces") / "trace.json"
        save_trace_summary(trace, path)
        return trace, load_trace_summary(path)

    def test_event_streams_roundtrip(self, trace_pair):
        original, loaded = trace_pair
        assert loaded.piece_completions == original.piece_completions
        assert loaded.block_arrivals == original.block_arrivals
        assert loaded.choke_rounds == original.choke_rounds
        assert loaded.seed_state_at == original.seed_state_at
        assert loaded.endgame_at == original.endgame_at
        assert loaded.messages_sent == original.messages_sent

    def test_records_roundtrip(self, trace_pair):
        original, loaded = trace_pair
        assert set(loaded.records) == set(original.records)
        for address, record in original.records.items():
            twin = loaded.records[address]
            assert twin.presence.intervals == record.presence.intervals
            assert twin.uploaded_leecher_state == record.uploaded_leecher_state
            assert twin.unchoke_times == record.unchoke_times

    def test_analysis_agrees_on_loaded_trace(self, trace_pair):
        original, loaded = trace_pair
        assert loaded.leecher_interval == original.leecher_interval
        assert loaded.seed_interval == original.seed_interval

        original_entropy = summarize_entropy(original)
        loaded_entropy = summarize_entropy(loaded)
        assert loaded_entropy.local_in_remote == original_entropy.local_in_remote

        original_series = replication_series(original)
        loaded_series = replication_series(loaded)
        assert loaded_series.min_copies == original_series.min_copies

        assert peer_set_series(loaded) == peer_set_series(original)

        original_pieces = interarrival_summary(original, kind="piece", n=5)
        loaded_pieces = interarrival_summary(loaded, kind="piece", n=5)
        assert loaded_pieces.all_items == original_pieces.all_items

        assert leecher_contribution(loaded) == leecher_contribution(original)
        original_corr = unchoke_interest_correlation(original, state="leecher")
        loaded_corr = unchoke_interest_correlation(loaded, state="leecher")
        assert loaded_corr.unchoke_counts == original_corr.unchoke_counts

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 999}')
        with pytest.raises(ValueError):
            load_trace_summary(path)
