"""Tests for the piece-selection strategies."""

from collections import Counter
from random import Random

import pytest
from hypothesis import given, strategies as st

from repro.core.rarest_first import (
    DEFAULT_SELECTOR_SPEC,
    GlobalRarestSelector,
    ProportionalFairSelector,
    RandomSelector,
    RarestFirstSelector,
    SELECTOR_REGISTRY,
    SequentialSelector,
    SequentialWindowSelector,
    make_selector,
    parse_selector_spec,
)


class TestRarestFirst:
    def test_picks_unique_rarest(self):
        selector = RarestFirstSelector()
        availability = [5, 1, 3, 4]
        assert selector.select([0, 1, 2, 3], availability, Random(1)) == 1

    def test_random_within_rarest_set(self):
        selector = RarestFirstSelector()
        availability = [2, 1, 1, 9]
        picks = {
            selector.select([0, 1, 2, 3], availability, Random(seed))
            for seed in range(50)
        }
        assert picks == {1, 2}

    def test_only_considers_candidates(self):
        # Piece 0 is globally rarest but not offered by this remote.
        selector = RarestFirstSelector()
        availability = [0, 2, 3]
        assert selector.select([1, 2], availability, Random(1)) == 1

    def test_uniformity_over_rarest_set(self):
        selector = RarestFirstSelector()
        availability = [1, 1, 1, 1]
        rng = Random(42)
        counts = Counter(
            selector.select([0, 1, 2, 3], availability, rng) for __ in range(4000)
        )
        for piece in range(4):
            assert 800 < counts[piece] < 1200  # roughly uniform


class TestRandomSelector:
    def test_ignores_availability(self):
        selector = RandomSelector()
        availability = [0, 100]
        picks = {selector.select([0, 1], availability, Random(s)) for s in range(40)}
        assert picks == {0, 1}


class TestSequentialSelector:
    def test_lowest_index(self):
        selector = SequentialSelector()
        assert selector.select([7, 2, 9], [1] * 10, Random(1)) == 2


class TestGlobalRarest:
    def test_uses_oracle_counts(self):
        # Local availability says piece 0 is rarest, the oracle says 1.
        def oracle():
            return [10, 1]

        selector = GlobalRarestSelector(oracle)
        assert selector.select([0, 1], [1, 5], Random(1)) == 1

    def test_oracle_called_fresh_each_time(self):
        counts = {"calls": 0}

        def oracle():
            counts["calls"] += 1
            return [1, 2]

        selector = GlobalRarestSelector(oracle)
        selector.select([0, 1], [0, 0], Random(1))
        selector.select([0, 1], [0, 0], Random(1))
        assert counts["calls"] == 2


class TestSequentialWindow:
    def test_prefers_window_pieces(self):
        # Window [0, 4): pieces 8 and 9 are rarer but out of window.
        selector = SequentialWindowSelector(window=4)
        availability = [5, 5, 5, 5, 5, 5, 5, 5, 1, 1]
        assert selector.select([2, 8, 9], availability, Random(1)) == 2

    def test_rarest_within_window(self):
        selector = SequentialWindowSelector(window=4)
        availability = [9, 2, 7, 7]
        assert selector.select([0, 1, 2], availability, Random(1)) == 1

    def test_falls_back_to_rarest_outside_window(self):
        # Nothing in the window: behave like rarest first on the rest.
        selector = SequentialWindowSelector(window=2)
        availability = [0, 0, 5, 1, 5]
        assert selector.select([2, 3, 4], availability, Random(1)) == 3

    def test_window_follows_bound_position(self):
        selector = SequentialWindowSelector(window=2)
        selector.bind_position(lambda: 6)
        availability = [1, 1, 1, 1, 1, 1, 9, 9, 1, 1]
        picks = {
            selector.select([0, 6, 7, 8], availability, Random(s))
            for s in range(30)
        }
        assert picks == {6, 7}

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SequentialWindowSelector(window=0)


class TestProportionalFair:
    def test_urgency_prefers_pieces_near_position(self):
        selector = ProportionalFairSelector(urgency=0.5, rarity_bias=0.0)
        availability = [3] * 40
        counts = Counter(
            selector.select(list(range(40)), availability, Random(seed))
            for seed in range(2000)
        )
        assert counts[0] > counts[5] > counts.get(20, 0)

    def test_rarity_bias_prefers_rare_pieces_at_equal_distance(self):
        # Urgency 1.0 makes distance irrelevant; only rarity remains.
        selector = ProportionalFairSelector(urgency=1.0, rarity_bias=2.0)
        availability = [9, 0, 9]
        counts = Counter(
            selector.select([0, 1, 2], availability, Random(seed))
            for seed in range(300)
        )
        assert counts[1] > counts[0] + counts[2]

    def test_position_shifts_urgency_origin(self):
        selector = ProportionalFairSelector(urgency=0.1, rarity_bias=0.0)
        selector.bind_position(lambda: 30)
        availability = [1] * 40
        counts = Counter(
            selector.select([0, 30, 39], availability, Random(seed))
            for seed in range(500)
        )
        # Pieces behind the position keep distance 0 (still urgent for
        # completeness); 30 and 0 dominate the far-ahead 39.
        assert counts.get(39, 0) < counts[30]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ProportionalFairSelector(urgency=0.0)
        with pytest.raises(ValueError):
            ProportionalFairSelector(urgency=1.5)
        with pytest.raises(ValueError):
            ProportionalFairSelector(rarity_bias=-1.0)


class TestSelectorRegistry:
    def test_registry_covers_builtins(self):
        assert set(SELECTOR_REGISTRY) == {
            "rarest-first", "random", "sequential", "seq-window", "pfs",
            "mode-suppression",
        }
        assert DEFAULT_SELECTOR_SPEC in SELECTOR_REGISTRY

    def test_parse_plain_name(self):
        assert parse_selector_spec("rarest-first") == ("rarest-first", {})

    def test_parse_parameters(self):
        name, params = parse_selector_spec("pfs:urgency=0.9,rarity_bias=2")
        assert name == "pfs"
        assert params == {"urgency": 0.9, "rarity_bias": 2}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            parse_selector_spec("no-such-strategy")

    def test_bad_parameter_rejected(self):
        with pytest.raises(ValueError):
            make_selector("seq-window:no_such_param=3")
        with pytest.raises(ValueError):
            make_selector("seq-window:window=0")

    def test_make_selector_none_is_none(self):
        assert make_selector(None) is None
        assert make_selector("") is None

    def test_make_selector_returns_fresh_instances(self):
        # Playback-aware selectors carry per-peer position bindings, so
        # sharing one instance between peers would be a bug.
        first = make_selector("seq-window:window=8")
        second = make_selector("seq-window:window=8")
        assert first is not second
        assert first.window == 8


@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=40),
    st.integers(0, 2**32 - 1),
)
def test_property_every_selector_returns_a_candidate(availability, seed):
    candidates = list(range(len(availability)))
    rng = Random(seed)
    for selector in (
        RarestFirstSelector(),
        RandomSelector(),
        SequentialSelector(),
        GlobalRarestSelector(lambda: availability),
        SequentialWindowSelector(window=4),
        ProportionalFairSelector(),
    ):
        assert selector.select(candidates, availability, rng) in candidates


@given(
    st.lists(st.integers(0, 50), min_size=2, max_size=40),
    st.integers(0, 2**32 - 1),
)
def test_property_rarest_first_picks_minimum(availability, seed):
    candidates = list(range(len(availability)))
    pick = RarestFirstSelector().select(candidates, availability, Random(seed))
    assert availability[pick] == min(availability)
