"""Tests for the piece-selection strategies."""

from collections import Counter
from random import Random

from hypothesis import given, strategies as st

from repro.core.rarest_first import (
    GlobalRarestSelector,
    RandomSelector,
    RarestFirstSelector,
    SequentialSelector,
)


class TestRarestFirst:
    def test_picks_unique_rarest(self):
        selector = RarestFirstSelector()
        availability = [5, 1, 3, 4]
        assert selector.select([0, 1, 2, 3], availability, Random(1)) == 1

    def test_random_within_rarest_set(self):
        selector = RarestFirstSelector()
        availability = [2, 1, 1, 9]
        picks = {
            selector.select([0, 1, 2, 3], availability, Random(seed))
            for seed in range(50)
        }
        assert picks == {1, 2}

    def test_only_considers_candidates(self):
        # Piece 0 is globally rarest but not offered by this remote.
        selector = RarestFirstSelector()
        availability = [0, 2, 3]
        assert selector.select([1, 2], availability, Random(1)) == 1

    def test_uniformity_over_rarest_set(self):
        selector = RarestFirstSelector()
        availability = [1, 1, 1, 1]
        rng = Random(42)
        counts = Counter(
            selector.select([0, 1, 2, 3], availability, rng) for __ in range(4000)
        )
        for piece in range(4):
            assert 800 < counts[piece] < 1200  # roughly uniform


class TestRandomSelector:
    def test_ignores_availability(self):
        selector = RandomSelector()
        availability = [0, 100]
        picks = {selector.select([0, 1], availability, Random(s)) for s in range(40)}
        assert picks == {0, 1}


class TestSequentialSelector:
    def test_lowest_index(self):
        selector = SequentialSelector()
        assert selector.select([7, 2, 9], [1] * 10, Random(1)) == 2


class TestGlobalRarest:
    def test_uses_oracle_counts(self):
        # Local availability says piece 0 is rarest, the oracle says 1.
        oracle = lambda: [10, 1]
        selector = GlobalRarestSelector(oracle)
        assert selector.select([0, 1], [1, 5], Random(1)) == 1

    def test_oracle_called_fresh_each_time(self):
        counts = {"calls": 0}

        def oracle():
            counts["calls"] += 1
            return [1, 2]

        selector = GlobalRarestSelector(oracle)
        selector.select([0, 1], [0, 0], Random(1))
        selector.select([0, 1], [0, 0], Random(1))
        assert counts["calls"] == 2


@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=40),
    st.integers(0, 2**32 - 1),
)
def test_property_every_selector_returns_a_candidate(availability, seed):
    candidates = list(range(len(availability)))
    rng = Random(seed)
    for selector in (
        RarestFirstSelector(),
        RandomSelector(),
        SequentialSelector(),
        GlobalRarestSelector(lambda: availability),
    ):
        assert selector.select(candidates, availability, rng) in candidates


@given(
    st.lists(st.integers(0, 50), min_size=2, max_size=40),
    st.integers(0, 2**32 - 1),
)
def test_property_rarest_first_picks_minimum(availability, seed):
    candidates = list(range(len(availability)))
    pick = RarestFirstSelector().select(candidates, availability, Random(seed))
    assert availability[pick] == min(availability)
