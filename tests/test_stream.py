"""Tests for the incremental peer-wire stream decoder and tracker wire."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol.messages import (
    Bitfield,
    Choke,
    Handshake,
    Have,
    Interested,
    KeepAlive,
    MessageError,
    Piece,
    Request,
    Unchoke,
)
from repro.protocol.stream import MessageStream, encode_session
from repro.tracker.wire import (
    AnnounceResponse,
    decode_announce_response,
    encode_announce_response,
    encode_failure,
    pack_peers,
    unpack_peers,
)

HANDSHAKE = Handshake(info_hash=b"h" * 20, peer_id=b"p" * 20)

MESSAGES = [
    Choke(),
    Unchoke(),
    Interested(),
    Have(piece=42),
    Bitfield(bits=b"\xf0"),
    Request(piece=1, offset=0, length=16384),
    Piece(piece=1, offset=0, data=b"x" * 64),
    KeepAlive(),
]


class TestMessageStream:
    def test_whole_session_at_once(self):
        stream = MessageStream()
        wire = encode_session(MESSAGES, handshake=HANDSHAKE)
        out = stream.feed(wire)
        assert out[0] == HANDSHAKE
        assert out[1:] == MESSAGES
        assert stream.buffered_bytes == 0
        assert stream.bytes_consumed == len(wire)

    def test_byte_at_a_time(self):
        stream = MessageStream()
        wire = encode_session(MESSAGES, handshake=HANDSHAKE)
        out = []
        for index in range(len(wire)):
            out.extend(stream.feed(wire[index : index + 1]))
        assert out[0] == HANDSHAKE
        assert out[1:] == MESSAGES

    def test_without_handshake(self):
        stream = MessageStream(expect_handshake=False)
        out = stream.feed(encode_session(MESSAGES))
        assert out == MESSAGES
        assert stream.handshake is None

    def test_partial_frame_buffers(self):
        stream = MessageStream(expect_handshake=False)
        wire = Have(piece=7).encode()
        assert stream.feed(wire[:-1]) == []
        assert stream.buffered_bytes == len(wire) - 1
        assert stream.feed(wire[-1:]) == [Have(piece=7)]

    def test_handshake_recorded(self):
        stream = MessageStream()
        stream.feed(HANDSHAKE.encode())
        assert stream.handshake == HANDSHAKE

    def test_oversized_frame_rejected(self):
        stream = MessageStream(expect_handshake=False)
        with pytest.raises(MessageError):
            stream.feed((2 << 20).to_bytes(4, "big"))

    def test_bad_handshake_raises(self):
        stream = MessageStream()
        with pytest.raises(MessageError):
            stream.feed(b"\x00" * 68)


@given(st.lists(st.sampled_from(MESSAGES), max_size=20), st.data())
def test_property_arbitrary_fragmentation(messages, data):
    """Any fragmentation of any message sequence reassembles exactly."""
    wire = encode_session(messages, handshake=HANDSHAKE)
    stream = MessageStream()
    out = []
    position = 0
    while position < len(wire):
        step = data.draw(st.integers(1, max(1, len(wire) - position)))
        out.extend(stream.feed(wire[position : position + step]))
        position += step
    assert out[0] == HANDSHAKE
    assert out[1:] == messages


class TestCompactPeers:
    def test_roundtrip(self):
        peers = [("10.0.0.1", 6881), ("192.168.1.2", 51413)]
        assert unpack_peers(pack_peers(peers)) == peers

    def test_six_bytes_per_peer(self):
        assert len(pack_peers([("1.2.3.4", 80)])) == 6

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            unpack_peers(b"\x00" * 5)

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            pack_peers([("1.2.3.4", 0)])
        with pytest.raises(ValueError):
            pack_peers([("1.2.3.4", 70000)])

    @given(
        st.lists(
            st.tuples(
                st.tuples(
                    st.integers(0, 255), st.integers(0, 255),
                    st.integers(0, 255), st.integers(0, 255),
                ).map(lambda q: "%d.%d.%d.%d" % q),
                st.integers(1, 65535),
            ),
            max_size=30,
        )
    )
    def test_property_roundtrip(self, peers):
        assert unpack_peers(pack_peers(peers)) == peers


class TestAnnounceResponse:
    def test_roundtrip(self):
        response = AnnounceResponse(
            interval=1800,
            complete=3,
            incomplete=14,
            peers=[("10.0.0.1", 6881), ("10.0.0.2", 6882)],
        )
        assert decode_announce_response(encode_announce_response(response)) == response

    def test_failure_response_raises(self):
        with pytest.raises(ValueError, match="torrent not registered"):
            decode_announce_response(encode_failure("torrent not registered"))

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            decode_announce_response(b"garbage")
        with pytest.raises(ValueError):
            decode_announce_response(b"le")
        with pytest.raises(ValueError):
            decode_announce_response(b"de")
