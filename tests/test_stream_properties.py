"""Property/fuzz tests for the incremental peer-wire stream decoder.

The live networking layer feeds raw socket chunks straight into
:class:`~repro.protocol.stream.MessageStream`, so the decoder must be
fragmentation-proof: any re-chunking of a valid byte stream yields the
identical message list, and malformed frames fail loudly *without*
corrupting the frames queued behind them.
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.protocol.messages import (
    Bitfield,
    Cancel,
    Choke,
    Handshake,
    Have,
    Interested,
    KeepAlive,
    MessageError,
    NotInterested,
    Piece,
    Request,
    Unchoke,
)
from repro.protocol.stream import MAX_FRAME_LENGTH, MessageStream, encode_session

HANDSHAKE = Handshake(info_hash=b"h" * 20, peer_id=b"p" * 20)

U32 = st.integers(min_value=0, max_value=2**32 - 1)

MESSAGES = st.one_of(
    st.just(Choke()),
    st.just(Unchoke()),
    st.just(Interested()),
    st.just(NotInterested()),
    st.just(KeepAlive()),
    U32.map(lambda piece: Have(piece=piece)),
    st.binary(max_size=64).map(lambda bits: Bitfield(bits=bits)),
    st.tuples(U32, U32, U32).map(lambda t: Request(*t)),
    st.tuples(U32, U32, U32).map(lambda t: Cancel(*t)),
    st.tuples(U32, U32, st.binary(max_size=128)).map(
        lambda t: Piece(piece=t[0], offset=t[1], data=t[2])
    ),
)


def _chunks(wire: bytes, cuts):
    """Split *wire* at the (sorted, deduplicated) cut offsets."""
    points = sorted({min(cut, len(wire)) for cut in cuts})
    pieces, start = [], 0
    for point in points:
        pieces.append(wire[start:point])
        start = point
    pieces.append(wire[start:])
    return pieces


class TestRechunkingIdentity:
    @settings(max_examples=200, deadline=None)
    @given(
        messages=st.lists(MESSAGES, max_size=12),
        with_handshake=st.booleans(),
        data=st.data(),
    )
    def test_any_rechunking_yields_identical_messages(
        self, messages, with_handshake, data
    ):
        wire = encode_session(messages, handshake=HANDSHAKE if with_handshake else None)
        cuts = data.draw(
            st.lists(st.integers(min_value=0, max_value=max(len(wire), 1)), max_size=20)
        )
        stream = MessageStream(expect_handshake=with_handshake)
        out = []
        for chunk in _chunks(wire, cuts):
            out.extend(stream.feed(chunk))
        expected = ([HANDSHAKE] if with_handshake else []) + messages
        assert out == expected
        assert stream.buffered_bytes == 0
        assert stream.bytes_consumed == len(wire)

    @settings(max_examples=50, deadline=None)
    @given(messages=st.lists(MESSAGES, min_size=1, max_size=8))
    def test_byte_at_a_time_equals_single_feed(self, messages):
        wire = encode_session(messages)
        whole = MessageStream(expect_handshake=False).feed(wire)
        trickle = MessageStream(expect_handshake=False)
        out = []
        for index in range(len(wire)):
            out.extend(trickle.feed(wire[index : index + 1]))
        assert out == whole == messages


class TestMalformedFrames:
    @settings(max_examples=100, deadline=None)
    @given(
        bad_id=st.integers(min_value=9, max_value=255),
        tail=st.lists(MESSAGES, min_size=1, max_size=5),
    )
    def test_unknown_id_raises_and_preserves_later_frames(self, bad_id, tail):
        bad = (1).to_bytes(4, "big") + bytes([bad_id])
        stream = MessageStream(expect_handshake=False)
        with pytest.raises(MessageError):
            stream.feed(bad + encode_session(tail))
        # The poisoned frame is consumed; everything behind it is intact.
        assert stream.feed(b"") == tail
        assert stream.buffered_bytes == 0

    @settings(max_examples=100, deadline=None)
    @given(
        declared=st.integers(min_value=6, max_value=64),
        tail=st.lists(MESSAGES, min_size=1, max_size=5),
    )
    def test_mutated_length_prefix_raises_and_preserves_later_frames(
        self, declared, tail
    ):
        # A HAVE frame whose length prefix was corrupted: the declared
        # payload length disagrees with what HAVE decodes (a valid HAVE
        # frame declares exactly 5, so anything larger is a mutation).
        body = b"\x04" + b"\x00" * (declared - 1)
        bad = declared.to_bytes(4, "big") + body
        stream = MessageStream(expect_handshake=False)
        with pytest.raises(MessageError):
            stream.feed(bad + encode_session(tail))
        assert stream.feed(b"") == tail

    @settings(max_examples=50, deadline=None)
    @given(excess=st.integers(min_value=1, max_value=2**31))
    def test_oversized_frame_rejected_at_limit(self, excess):
        stream = MessageStream(expect_handshake=False)
        with pytest.raises(MessageError):
            stream.feed((MAX_FRAME_LENGTH + excess).to_bytes(4, "big"))

    def test_frame_at_exactly_max_length_accepted(self):
        stream = MessageStream(expect_handshake=False)
        payload = b"\x00" * 8 + b"x" * (MAX_FRAME_LENGTH - 9)
        frame = MAX_FRAME_LENGTH.to_bytes(4, "big") + bytes([Piece.MESSAGE_ID]) + payload
        (message,) = stream.feed(frame)
        assert isinstance(message, Piece)
        assert len(message.data) == MAX_FRAME_LENGTH - 9

    def test_error_is_sticky_per_frame_not_per_stream(self):
        # After an unknown-id error the stream object remains usable for
        # the bytes it already buffered (reap-and-resync semantics).
        stream = MessageStream(expect_handshake=False)
        bad = (1).to_bytes(4, "big") + bytes([200])
        good = Have(piece=3).encode() + Choke().encode()
        with pytest.raises(MessageError):
            stream.feed(bad + good)
        assert stream.feed(Unchoke().encode()) == [
            Have(piece=3),
            Choke(),
            Unchoke(),
        ]
