"""Streaming workload tests: playback model, metrics, determinism.

Covers the streaming piece-selection family end to end:

* the playback state machine obeys its invariants (monotonic in-order
  prefix, disjoint rebuffer windows, startup before finish);
* playback metrics replay **byte-identically** from the JSONL trace and
  from the binary (RBT1) container;
* the engine configuration (heap vs calendar-queue scheduler) is
  invisible to a streaming run — identical trace fingerprints;
* enabling playback without a playback-aware selector does not perturb
  the simulation (observer-only), and the pre-streaming baseline trace
  fingerprint of the default campaign shard is pinned.
"""

import pytest

from repro.analysis.streaming import in_order_lag, playback_summary
from repro.core.rarest_first import make_selector
from repro.instrumentation import (
    BinaryTraceRecorder,
    TraceRecorder,
    binary_to_jsonl,
    iter_trace,
    replay_instrumentation,
)
from repro.sim.config import KIB, PeerConfig, SwarmConfig
from repro.workloads import build_experiment, scaled_copy, scenario_by_id

pytestmark = pytest.mark.streaming

#: Every Instrumentation field the playback series writes; replay must
#: reproduce each one with exact equality (floats included).
PLAYBACK_FIELDS = (
    "playback_events",
    "playback_started_at",
    "playback_startup_delay",
    "playback_finished_at",
    "rebuffer_intervals",
    "in_order_history",
)

STREAM_RATE = 24.0 * KIB


def run_streaming(
    recorder=None,
    selector_spec="seq-window:window=8",
    extra=None,
    seed=7,
    duration=400.0,
    playback_rate=STREAM_RATE,
):
    """One seeded torrent-2 streaming run; returns the harness."""
    scenario = scaled_copy(scenario_by_id(2), duration=duration)
    swarm_config = None
    if extra is not None:
        swarm_config = SwarmConfig(
            seed=seed, duration=duration, extra=dict(extra)
        )
    harness = build_experiment(
        scenario,
        seed=seed,
        local_selector=make_selector(selector_spec),
        population_selector_factory=lambda: make_selector(selector_spec),
        swarm_config=swarm_config,
        trace_recorder=recorder,
        playback_rate=playback_rate,
    )
    harness.run(duration)
    return harness


@pytest.fixture(scope="module")
def jsonl_run():
    recorder = TraceRecorder()
    harness = run_streaming(recorder)
    recorder.close()
    return harness, recorder


class TestPlaybackStateMachine:
    def test_invariants(self, jsonl_run):
        harness, __ = jsonl_run
        instr = harness.instrumentation
        assert instr.playback_events, "streaming run recorded no playback"
        # In-order prefix is monotone and the event times non-decreasing.
        times = [t for t, __, __ in instr.in_order_history]
        pieces = [p for __, p, __ in instr.in_order_history]
        assert times == sorted(times)
        assert pieces == sorted(pieces)
        # Playback started only after the startup buffer filled.
        playback = harness.local_peer.playback
        assert playback is not None
        if playback.started_at is not None:
            start_event = next(
                (t, d) for t, k, d in instr.playback_events if k == "start"
            )
            assert start_event[0] == instr.playback_started_at
            assert instr.playback_startup_delay == (
                instr.playback_started_at - harness.local_peer.joined_at
            )
        # Rebuffer windows are disjoint, ordered, and only the last may
        # still be open when the run stops.
        intervals = instr.rebuffer_intervals
        for index, (start, end) in enumerate(intervals):
            if end is None:
                assert index == len(intervals) - 1
            else:
                assert end >= start
            if index:
                previous_end = intervals[index - 1][1]
                assert previous_end is not None and start >= previous_end

    def test_position_never_exceeds_in_order_bytes(self, jsonl_run):
        harness, __ = jsonl_run
        for __, kind, data in harness.instrumentation.playback_events:
            assert data["position"] <= data["bytes"]
            assert data["bytes"] == min(
                data["pieces"] * harness.scenario.piece_size,
                harness.scenario.content_size,
            )

    def test_in_order_lag_is_non_negative(self, jsonl_run):
        harness, __ = jsonl_run
        for __, lag in in_order_lag(harness.instrumentation):
            assert lag >= 0

    def test_summary_folds_the_series(self, jsonl_run):
        harness, __ = jsonl_run
        instr = harness.instrumentation
        summary = playback_summary(instr)
        assert summary.startup_delay == instr.playback_startup_delay
        assert summary.rebuffer_count == len(instr.rebuffer_intervals)
        assert summary.in_order_pieces == instr.in_order_history[-1][1]

    def test_summary_requires_playback(self):
        from repro.instrumentation import Instrumentation

        with pytest.raises(ValueError):
            playback_summary(Instrumentation())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PeerConfig(playback_rate=-1.0)
        with pytest.raises(ValueError):
            PeerConfig(playback_rate=0.0)
        with pytest.raises(ValueError):
            PeerConfig(playback_startup_pieces=0)


class TestStreamingReplayDeterminism:
    def test_jsonl_replay_is_byte_identical(self, jsonl_run):
        harness, recorder = jsonl_run
        replayed = replay_instrumentation(
            recorder, peer=harness.local_peer.address
        )
        for field in PLAYBACK_FIELDS:
            assert getattr(replayed, field) == getattr(
                harness.instrumentation, field
            ), field
        assert playback_summary(replayed) == playback_summary(
            harness.instrumentation
        )

    def test_binary_container_round_trips_playback(self, jsonl_run):
        harness, jsonl_recorder = jsonl_run
        binary = BinaryTraceRecorder()
        binary_harness = run_streaming(binary)
        binary.close()
        # The binary recorder stores playback events as verbatim JSON
        # records: decoding reproduces the JSONL file byte for byte.
        assert binary_to_jsonl(binary) == jsonl_recorder.lines()
        replayed = replay_instrumentation(
            binary_to_jsonl(binary), peer=binary_harness.local_peer.address
        )
        for field in PLAYBACK_FIELDS:
            assert getattr(replayed, field) == getattr(
                harness.instrumentation, field
            ), field

    def test_heap_and_wheel_queues_agree(self):
        fingerprints = {}
        summaries = {}
        for queue in ("heap", "wheel"):
            recorder = TraceRecorder()
            harness = run_streaming(
                recorder, extra={"event_queue": queue}, duration=300.0
            )
            fingerprints[queue] = recorder.close()
            summaries[queue] = playback_summary(harness.instrumentation)
        assert fingerprints["heap"] == fingerprints["wheel"]
        assert summaries["heap"] == summaries["wheel"]


class TestStreamingGating:
    def test_playback_off_means_no_playback_events(self):
        recorder = TraceRecorder()
        run_streaming(recorder, selector_spec="rarest-first",
                      playback_rate=None, duration=200.0)
        recorder.close()
        assert not any(
            event["type"] == "playback" for event in iter_trace(recorder)
        )

    def test_playback_is_observer_only_for_non_streaming_selectors(self):
        """With the default (position-blind) selector, turning playback
        on must not change a single simulation outcome."""

        def outcomes(playback_rate):
            harness = run_streaming(
                selector_spec="rarest-first",
                playback_rate=playback_rate,
                duration=200.0,
            )
            result = harness.swarm.result
            return (
                result.bytes_moved,
                sorted(result.completions.items()),
                {
                    address: sorted(peer.bitfield.have_set)
                    for address, peer in harness.swarm.peers.items()
                },
            )

        assert outcomes(None) == outcomes(STREAM_RATE)

    def test_baseline_campaign_fingerprint_is_pinned(self):
        """The default (non-streaming) campaign shard must keep its
        pre-streaming trace fingerprint: the whole family is gated."""
        from repro.campaign.runner import execute_shard
        from repro.campaign.spec import ShardSpec, derive_shard_seed

        shard = ShardSpec(
            torrent_id=2,
            scenario="smoke",
            replicate=0,
            seed=derive_shard_seed(3, 2, "smoke", 0),
            duration=240.0,
        )
        record, __ = execute_shard(shard)
        # Pinned baseline.  Regenerated when tracker announces moved to
        # caller-RNG sampling (each peer's draws became a function of
        # its own announce sequence instead of a shared tracker stream).
        assert record["trace_fingerprint"] == (
            "11873d630ec8ec07258e1cfe1424d5ebf5a3c1ebb465b967a02bb70f4e7662f3"
        )


class TestStreamingSelectorsImproveStreaming:
    def test_seq_window_starts_earlier_than_rarest_first(self):
        """The point of the family: on the same swarm, the windowed
        selector reaches playable in-order state no later than pure
        rarest first (which downloads out of order)."""

        def in_order(selector_spec):
            harness = run_streaming(
                selector_spec=selector_spec, duration=300.0
            )
            history = harness.instrumentation.in_order_history
            return history[-1][1] if history else 0

        assert in_order("seq-window:window=8") >= in_order("rarest-first")
