"""Tests for super-seeding mode (§IV-A.4, the [3] option).

A super seed advertises an empty bitfield, reveals pieces one at a time
per peer (preferring the least-revealed piece), serves only revealed
pieces, and offers the next piece when the peer announces completion of
the current one.
"""

from repro.sim.config import KIB, PeerConfig

from tests.conftest import fast_config, tiny_swarm


def super_seed_config(upload=8 * KIB):
    return PeerConfig(upload_capacity=upload, super_seeding=True)


class TestSuperSeedBasics:
    def test_flag_requires_complete_bitfield(self):
        swarm = tiny_swarm(num_pieces=4)
        leecher = swarm.add_peer(config=super_seed_config())
        assert not leecher.super_seeding  # a leecher cannot super-seed

    def test_advertises_empty_bitfield(self):
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=super_seed_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(1)
        conn = leecher.connections[seed.address]
        # The leecher sees only the revealed piece, not the full bitfield.
        assert conn.remote_bitfield.count == 1

    def test_reveals_one_piece_per_peer(self):
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=super_seed_config(), is_seed=True)
        leechers = [swarm.add_peer(config=fast_config()) for __ in range(4)]
        swarm.run(1)
        revealed = [seed._active_reveal[l.address] for l in leechers]
        # Least-revealed preference: four distinct pieces revealed.
        assert len(set(revealed)) == 4

    def test_serves_only_revealed_pieces(self):
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=super_seed_config(upload=2 * KIB), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(20)  # mid-download: the funnel is still active
        assert 0 < leecher.bitfield.count < 8
        # The leecher can hold at most the pieces revealed to it so far.
        assert leecher.bitfield.count <= len(seed._revealed_to[leecher.address])

    def test_connection_closed_after_everything_revealed(self):
        """Once every piece has been revealed, the super seed looks like
        a plain seed; a completing leecher closes the connection."""
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=super_seed_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(120)
        assert leecher.bitfield.is_complete()
        assert seed.address not in leecher.connections

    def test_reveal_advances_on_completion(self):
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=super_seed_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(300)
        # Reveals kept flowing: the whole content was eventually offered
        # and downloaded through the one-piece-at-a-time funnel.
        assert leecher.bitfield.is_complete()

    def test_full_swarm_completes_with_super_seed(self):
        swarm = tiny_swarm(num_pieces=16, seed=13)
        swarm.add_peer(config=super_seed_config(), is_seed=True)
        leechers = [
            swarm.add_peer(config=fast_config(upload=4 * KIB)) for __ in range(5)
        ]
        swarm.run(900)
        assert all(l.bitfield.is_complete() for l in leechers)

    def test_departed_peer_reveals_cleaned(self):
        swarm = tiny_swarm(num_pieces=8)
        seed = swarm.add_peer(config=super_seed_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(5)
        assert leecher.address in seed._revealed_to
        leecher.leave()
        assert leecher.address not in seed._revealed_to
        assert leecher.address not in seed._active_reveal


class TestSuperSeedEfficiency:
    def test_no_duplicate_service_before_full_copy(self):
        """The flagship property: the seed pushes close to exactly one
        content's worth of bytes before the first full copy exists."""
        swarm = tiny_swarm(num_pieces=24, seed=21)
        seed = swarm.add_peer(
            config=super_seed_config(upload=4 * KIB), is_seed=True
        )
        for __ in range(6):
            swarm.add_peer(config=fast_config(upload=4 * KIB))
        samples = {}

        def probe(now):
            samples[now] = seed.total_uploaded

        swarm.on_tick(probe)
        result = swarm.run(600)
        first_copy = result.first_full_copy_at
        assert first_copy is not None
        uploaded_at_first_copy = min(
            (value for time, value in samples.items() if time >= first_copy),
            default=seed.total_uploaded,
        )
        content = swarm.metainfo.geometry.total_size
        # One copy's worth, with a small margin for in-flight blocks.
        assert uploaded_at_first_copy <= 1.3 * content

    def test_super_seed_matches_or_beats_plain_seed_on_first_copy(self):
        def first_copy(super_seeding):
            swarm = tiny_swarm(num_pieces=24, seed=29)
            config = PeerConfig(
                upload_capacity=2 * KIB, super_seeding=super_seeding
            )
            swarm.add_peer(config=config, is_seed=True)
            for __ in range(6):
                swarm.add_peer(config=fast_config(upload=4 * KIB))
            return swarm.run(1200).first_full_copy_at

        plain = first_copy(False)
        fancy = first_copy(True)
        assert plain is not None and fancy is not None
        # The theoretical floor is content/upload = 24*4kiB/2kiB = 48 s;
        # super seeding should not be (much) worse than the plain seed.
        assert fancy <= plain * 1.3
