"""Tests for swarm orchestration: oracle counts, transient detection,
results bookkeeping, and the fluid tick plumbing."""

import pytest

from repro.protocol.bitfield import Bitfield
from repro.sim.config import KIB, SwarmConfig

from tests.conftest import fast_config, tiny_swarm


class TestGlobalOracle:
    def test_counts_track_joins(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.add_peer(
            config=fast_config(), initial_bitfield=Bitfield(4, have=[0])
        )
        assert list(swarm.global_counts) == [2, 1, 1, 1]

    def test_counts_track_departures(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        partial = swarm.add_peer(
            config=fast_config(), initial_bitfield=Bitfield(4, have=[0])
        )
        partial.leave()
        assert list(swarm.global_counts) == [1, 1, 1, 1]

    def test_counts_track_replication(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(300)
        assert leecher.is_seed
        assert list(swarm.global_counts) == [2, 2, 2, 2]

    def test_oracle_matches_actual_bitfields(self):
        swarm = tiny_swarm(num_pieces=8)
        swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(4):
            swarm.add_peer(config=fast_config(upload=2 * KIB))
        swarm.run(77)  # mid-download
        expected = [0] * 8
        for peer in swarm.peers.values():
            for piece in peer.bitfield.have_indices():
                expected[piece] += 1
        assert list(swarm.global_counts) == expected


class TestTransientDetection:
    def test_transient_with_single_seed(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.add_peer(config=fast_config())
        assert swarm.is_transient()
        assert swarm.min_global_copies() == 1

    def test_steady_after_replication(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.add_peer(config=fast_config())
        swarm.run(300)
        assert not swarm.is_transient()

    def test_first_full_copy_recorded(self):
        swarm = tiny_swarm(num_pieces=8)
        swarm.add_peer(config=fast_config(upload=2 * KIB), is_seed=True)
        swarm.add_peer(config=fast_config())
        result = swarm.run(400)
        assert result.first_full_copy_at is not None
        # 8 pieces x 4 kiB at 2 kiB/s: the source needs >= 16 s.
        assert result.first_full_copy_at >= 16.0


class TestResults:
    def test_completion_and_join_times(self):
        swarm = tiny_swarm(num_pieces=4)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        result = swarm.run(300)
        download_time = result.download_time(leecher.address)
        assert download_time is not None and download_time > 0
        assert result.mean_download_time() == pytest.approx(download_time)

    def test_download_time_none_for_incomplete(self):
        swarm = tiny_swarm(num_pieces=64)
        swarm.add_peer(config=fast_config(upload=1 * KIB), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        result = swarm.run(5)
        assert result.download_time(leecher.address) is None
        assert result.mean_download_time() is None

    def test_bytes_recorded_for_active_and_departed(self):
        swarm = tiny_swarm(num_pieces=4)
        seed = swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config(seeding_time=10.0))
        result = swarm.run(400)
        assert result.bytes_uploaded[seed.address] > 0
        assert result.bytes_downloaded[leecher.address] == pytest.approx(
            swarm.metainfo.geometry.total_size
        )

    def test_duplicate_address_rejected(self):
        swarm = tiny_swarm()
        swarm.add_peer(config=fast_config(), address="10.0.0.1")
        with pytest.raises(ValueError):
            swarm.add_peer(config=fast_config(), address="10.0.0.1")

    def test_address_allocation_unique(self):
        swarm = tiny_swarm()
        addresses = {swarm.make_address() for __ in range(1000)}
        assert len(addresses) == 1000


class TestScheduledArrivals:
    def test_schedule_arrival(self):
        swarm = tiny_swarm()
        swarm.add_peer(config=fast_config(), is_seed=True)
        swarm.schedule_arrival(50.0, config=fast_config())
        swarm.run(49)
        assert len(swarm.peers) == 1
        swarm.run(2)
        assert len(swarm.peers) == 2

    def test_on_tick_callbacks(self):
        swarm = tiny_swarm(swarm_config=SwarmConfig(seed=1, tick_interval=1.0))
        ticks = []
        swarm.on_tick(ticks.append)
        swarm.run(10)
        assert len(ticks) == 10
        assert ticks[0] == 1.0


class TestBandwidthModelChoice:
    def test_upload_fair_model_also_completes(self):
        config = SwarmConfig(seed=3, extra={"bandwidth_model": "upload-fair"})
        swarm = tiny_swarm(swarm_config=config)
        swarm.add_peer(config=fast_config(), is_seed=True)
        leecher = swarm.add_peer(config=fast_config())
        swarm.run(300)
        assert leecher.bitfield.is_complete()


class TestFlowFastPath:
    """The per-tick allocation cache: ticks whose active flow set did not
    change reuse the previous rates instead of re-running the allocator."""

    def test_allocation_skipped_on_unchanged_flow_set(self):
        calls = []
        config = SwarmConfig(seed=5, tick_interval=1.0)
        swarm = tiny_swarm(num_pieces=32, swarm_config=config)
        original = swarm._allocate

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        swarm._allocate = counting
        swarm.add_peer(config=fast_config(upload=2 * KIB), is_seed=True)
        swarm.add_peer(config=fast_config(upload=2 * KIB))
        ticks = []
        swarm.on_tick(lambda now: ticks.append(now))
        swarm.run(60)  # a long steady transfer: one seed, one leecher
        assert calls  # the allocator did run...
        assert len(calls) < len(ticks)  # ...but far from every tick

    def test_cached_rates_match_per_tick_recompute(self):
        """Forcing a re-allocation every tick (by bumping the membership
        generation) must not change the outcome: the cache is a pure
        function of the flow set and the static capacities."""

        def run_once(force_recompute):
            config = SwarmConfig(seed=11, tick_interval=1.0)
            swarm = tiny_swarm(num_pieces=16, swarm_config=config)
            swarm.add_peer(config=fast_config(), is_seed=True)
            for __ in range(3):
                swarm.add_peer(config=fast_config(upload=2 * KIB))
            if force_recompute:

                def invalidate(now):
                    swarm._members_generation += 1

                swarm.on_tick(invalidate)
            result = swarm.run(200)
            return (
                result.bytes_moved,
                sorted(result.completions.items()),
                {a: p.bitfield.count for a, p in swarm.peers.items()},
            )

        assert run_once(False) == run_once(True)
