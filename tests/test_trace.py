"""Structured tracing: schema, determinism, and the no-perturbation
guarantee.

Four families of tests:

* **recorder unit behaviour** — header/footer framing, fingerprinting,
  closed-recorder errors, file and in-memory sinks producing identical
  bytes, and the hot-path ``emit_raw`` lines being exactly what the
  generic JSON encoder would emit;
* **determinism** — the same seeded experiment yields a byte-identical
  JSONL trace and fingerprint on every run;
* **no perturbation** — attaching tracing (fanned out next to the normal
  instrumentation, or swarm-wide) leaves the simulation's own event
  stream byte-identical to an untraced run;
* **integrity** (+ ``chaos``) — ``iter_trace`` detects tampering, and a
  trace whose writer crashed before writing the footer is still
  consumable and replayable.
"""

import json

import pytest

from repro.instrumentation import (
    Instrumentation,
    TraceRecorder,
    TracingObserver,
    iter_trace,
    replay_instrumentation,
    traced_peers,
)
from repro.instrumentation.replay import TraceFormatError
from repro.sim.config import KIB, SwarmConfig
from repro.sim.faults import FAULT_PRESETS
from repro.sim.observer import FanoutObserver
from repro.workloads import build_experiment, scaled_copy, scenario_by_id

from tests.conftest import fast_config, tiny_swarm
from tests.test_faults import TraceFingerprint


def small_scenario(torrent_id=2, duration=250.0):
    return scaled_copy(scenario_by_id(torrent_id), duration=duration)


def run_traced(seed=11, path=None, duration=250.0, trace_all=False):
    recorder = TraceRecorder(path)
    harness = build_experiment(
        small_scenario(duration=duration),
        seed=seed,
        trace_recorder=recorder,
        trace_all_peers=trace_all,
    )
    harness.run()
    recorder.close()
    return recorder, harness


# ---------------------------------------------------------------------------
# recorder unit behaviour
# ---------------------------------------------------------------------------


def test_recorder_framing_and_fingerprint():
    recorder = TraceRecorder()
    recorder.emit({"t": 0.0, "type": "piece", "peer": "10.0.0.1", "piece": 3})
    fingerprint = recorder.close()
    lines = recorder.lines()
    header = json.loads(lines[0])
    footer = json.loads(lines[-1])
    assert header == {"type": "trace_start", "v": 1}
    assert footer["type"] == "trace_end"
    assert footer["events"] == 1
    assert footer["fingerprint"] == fingerprint
    assert len(fingerprint) == 64
    assert recorder.events_emitted == 1
    assert [event["type"] for event in recorder.events()] == ["piece"]


def test_recorder_close_is_idempotent_and_seals():
    recorder = TraceRecorder()
    first = recorder.close()
    assert recorder.close() == first
    with pytest.raises(RuntimeError):
        recorder.emit({"t": 0.0, "type": "piece", "peer": "p", "piece": 0})
    with pytest.raises(RuntimeError):
        recorder.emit_raw("{}")


def test_recorder_context_manager_closes():
    with TraceRecorder() as recorder:
        recorder.emit({"t": 1.0, "type": "endgame", "peer": "10.0.0.1"})
    assert recorder.fingerprint is not None


def test_file_and_memory_sinks_are_byte_identical(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    on_disk, _ = run_traced(seed=5, path=path, duration=150.0)
    in_memory, _ = run_traced(seed=5, path=None, duration=150.0)
    assert on_disk.lines() == in_memory.lines()
    assert on_disk.fingerprint == in_memory.fingerprint


def test_raw_lines_match_generic_json_encoding():
    # The hot-path emit_raw must produce exactly what json.dumps would,
    # so that consumers can't tell which encoder wrote a line.
    recorder, _ = run_traced(seed=11, duration=150.0)
    for line in recorder.lines():
        event = json.loads(line)
        assert json.dumps(event, separators=(",", ":")) == line


def test_events_carry_schema_required_fields():
    recorder, harness = run_traced(seed=11, duration=150.0)
    events = recorder.events()
    assert events, "expected a non-trivial trace"
    for event in events:
        assert set(("t", "type", "peer")) <= set(event)
    assert events[0]["type"] == "attach"
    assert events[-1]["type"] == "finalize"
    assert {event["peer"] for event in events} == {harness.local_peer.address}


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_same_seed_yields_byte_identical_trace():
    first, _ = run_traced(seed=11)
    second, _ = run_traced(seed=11)
    assert first.lines() == second.lines()
    assert first.fingerprint == second.fingerprint


def test_different_seeds_yield_different_traces():
    first, _ = run_traced(seed=11)
    second, _ = run_traced(seed=12)
    assert first.fingerprint != second.fingerprint


def test_swarm_wide_trace_is_deterministic():
    first, _ = run_traced(seed=11, duration=150.0, trace_all=True)
    second, _ = run_traced(seed=11, duration=150.0, trace_all=True)
    assert first.lines() == second.lines()
    assert first.fingerprint == second.fingerprint


# ---------------------------------------------------------------------------
# no perturbation
# ---------------------------------------------------------------------------


def fingerprinted_swarm(seed, attach_tracer):
    """A tiny swarm whose local peer hashes every observable event;
    optionally a TracingObserver rides along via fan-out."""
    swarm = tiny_swarm(
        num_pieces=12,
        seed=seed,
        swarm_config=SwarmConfig(seed=seed, snapshot_interval=5.0),
    )
    swarm.add_peer(config=fast_config(), is_seed=True)
    fingerprint = TraceFingerprint()
    recorder = None
    if attach_tracer:
        recorder = TraceRecorder()
        observer = FanoutObserver(fingerprint, TracingObserver(recorder))
    else:
        observer = fingerprint
    swarm.add_peer(config=fast_config(upload=4 * KIB), observer=observer)
    for __ in range(4):
        swarm.add_peer(config=fast_config(upload=2 * KIB))
    swarm.run(400.0)
    return fingerprint.digest(), recorder


def test_tracing_does_not_perturb_the_simulation():
    # The engine-event fingerprint of a traced run must be byte-identical
    # to the untraced baseline: tracing draws no randomness, schedules no
    # events, and mutates no simulation state.
    untraced, _ = fingerprinted_swarm(seed=21, attach_tracer=False)
    traced, recorder = fingerprinted_swarm(seed=21, attach_tracer=True)
    assert traced == untraced
    assert recorder.events_emitted > 0


def test_tracing_disabled_runs_reproduce_each_other():
    first, _ = fingerprinted_swarm(seed=21, attach_tracer=False)
    second, _ = fingerprinted_swarm(seed=21, attach_tracer=False)
    assert first == second


def test_traced_experiment_outcome_matches_untraced():
    plain = build_experiment(small_scenario(), seed=11)
    plain_trace = plain.run()
    recorder, harness = run_traced(seed=11)
    traced_trace = harness.instrumentation
    assert traced_trace.peer.bitfield.count == plain_trace.peer.bitfield.count
    assert traced_trace.seed_state_at == plain_trace.seed_state_at
    assert traced_trace.piece_completions == plain_trace.piece_completions
    assert [vars(s) for s in traced_trace.snapshots] == [
        vars(s) for s in plain_trace.snapshots
    ]


# ---------------------------------------------------------------------------
# announce tracing (gated by SwarmConfig.trace_announces)
# ---------------------------------------------------------------------------


def announce_traced_swarm(seed=13, trace_announces=False):
    swarm = tiny_swarm(
        num_pieces=12,
        seed=seed,
        swarm_config=SwarmConfig(
            seed=seed,
            snapshot_interval=5.0,
            announce_interval=60.0,
            trace_announces=trace_announces,
        ),
    )
    swarm.add_peer(config=fast_config(), is_seed=True)
    recorder = TraceRecorder()
    instrumentation = Instrumentation()
    swarm.add_peer(
        config=fast_config(upload=4 * KIB),
        observer=FanoutObserver(instrumentation, TracingObserver(recorder)),
    )
    for __ in range(3):
        swarm.add_peer(config=fast_config(upload=2 * KIB))
    swarm.run(400.0)
    recorder.close()
    return swarm, recorder, instrumentation


def test_announce_events_off_by_default():
    __, recorder, instrumentation = announce_traced_swarm()
    assert not [e for e in recorder.events() if e["type"] == "announce"]
    assert instrumentation.announce_events == []


def test_announce_events_recorded_when_enabled():
    swarm, recorder, instrumentation = announce_traced_swarm(
        trace_announces=True
    )
    events = [e for e in recorder.events() if e["type"] == "announce"]
    assert events
    kinds = {e["kind"] for e in events}
    assert "started" in kinds
    for event in events:
        data = event["data"]
        assert data["peer"] == event["peer"]
        assert 0 <= data["returned"] <= data["num_want"]
        assert data["attempt"] >= 0
    assert instrumentation.announce_events
    assert instrumentation.metrics.value("announce.started") >= 1


def test_announce_tracing_does_not_perturb_the_run():
    # The gate's contract: turning announce tracing on adds announce
    # events to the trace and changes NOTHING else — the remaining
    # event stream is byte-identical (the flag draws no randomness and
    # schedules nothing).
    __, recorder_off, __i = announce_traced_swarm(trace_announces=False)
    __, recorder_on, __j = announce_traced_swarm(trace_announces=True)
    lines_off = recorder_off.lines()[1:-1]
    lines_on = [
        line
        for line in recorder_on.lines()[1:-1]
        if '"type":"announce"' not in line
    ]
    assert lines_on == lines_off


def test_announce_events_replay_into_instrumentation():
    __, recorder, live = announce_traced_swarm(trace_announces=True)
    replayed = replay_instrumentation(recorder.lines())
    assert replayed.announce_events == live.announce_events
    assert replayed.metrics.value("announce.started") == live.metrics.value(
        "announce.started"
    )


# ---------------------------------------------------------------------------
# integrity
# ---------------------------------------------------------------------------


def test_iter_trace_detects_tampering(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    run_traced(seed=5, path=path, duration=150.0)
    lines = open(path).read().splitlines()
    doctored = list(lines)
    victim = json.loads(doctored[3])
    victim["t"] = victim["t"] + 1.0
    doctored[3] = json.dumps(victim, separators=(",", ":"))
    tampered = str(tmp_path / "tampered.jsonl")
    with open(tampered, "w") as handle:
        handle.write("\n".join(doctored) + "\n")
    with pytest.raises(TraceFormatError):
        iter_trace(tampered)
    # verify=False skips the fingerprint check for forensic reads.
    assert iter_trace(tampered, verify=False)


def test_iter_trace_rejects_wrong_schema_version(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as handle:
        handle.write('{"type":"trace_start","v":999}\n')
        handle.write('{"t":0.0,"type":"endgame","peer":"p"}\n')
    with pytest.raises(TraceFormatError):
        iter_trace(path)


@pytest.mark.chaos
def test_trace_without_footer_survives_writer_crash(tmp_path):
    # A crashed writer leaves JSONL lines on disk but no trace_end
    # footer; the reader must still parse, list peers and replay.
    path = str(tmp_path / "crashed.jsonl")
    recorder, harness = run_traced(seed=11, path=path, duration=250.0)
    full = open(path).read().splitlines()
    truncated = str(tmp_path / "truncated.jsonl")
    with open(truncated, "w") as handle:
        handle.write("\n".join(full[:-1]) + "\n")  # drop the footer
    events = iter_trace(truncated)
    assert events == recorder.events()
    assert traced_peers(truncated) == [harness.local_peer.address]
    replayed = replay_instrumentation(truncated)
    assert isinstance(replayed, Instrumentation)
    assert replayed.piece_completions == harness.instrumentation.piece_completions


@pytest.mark.chaos
def test_traced_faulty_run_is_deterministic_and_replayable(tmp_path):
    def run(path):
        scenario = small_scenario(duration=300.0)
        recorder = TraceRecorder(path)
        harness = build_experiment(
            scenario,
            seed=29,
            swarm_config=SwarmConfig(
                seed=29,
                duration=scenario.duration,
                faults=FAULT_PRESETS["heavy"],
            ),
            trace_recorder=recorder,
        )
        harness.run()
        recorder.close()
        return recorder, harness

    first, harness = run(str(tmp_path / "a.jsonl"))
    second, _ = run(str(tmp_path / "b.jsonl"))
    assert first.fingerprint == second.fingerprint
    assert first.lines() == second.lines()
    replayed = replay_instrumentation(str(tmp_path / "a.jsonl"))
    assert replayed.fault_counters == harness.instrumentation.fault_counters
