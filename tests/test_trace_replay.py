"""Differential trace-replay harness.

The headline guarantee of the tracing layer: replaying a structured
trace file through :func:`replay_instrumentation` rebuilds an
``Instrumentation`` whose *every* derived artefact — remote-peer
records, snapshots, event logs, counters, and the figure series computed
from them — is field-for-field equal to the live instrumentation of the
run that wrote the trace.  Exercised for three seeded scenarios: a
steady-state torrent, a transient torrent, and a transient torrent under
the heavy fault preset (crashes, outages, message loss — churn with
half-open connections).

Set ``REPRO_TRACE_ARTIFACTS`` to a directory to keep the trace files
(CI uploads them on failure); otherwise they go to pytest's tmp dir.
"""

import os
from dataclasses import asdict

import pytest

from repro.analysis import (
    interarrival_summary,
    replication_series,
    summarize_entropy,
)
from repro.instrumentation import TraceRecorder, replay_instrumentation
from repro.sim.config import SwarmConfig
from repro.sim.faults import FAULT_PRESETS
from repro.workloads import build_experiment, scaled_copy, scenario_by_id

SCENARIOS = {
    "steady": dict(torrent_id=19, seed=7, duration=300.0, faults=None),
    "transient": dict(torrent_id=2, seed=11, duration=400.0, faults=None),
    "faulty_churn": dict(torrent_id=2, seed=29, duration=400.0, faults="heavy"),
}


def artifact_dir(tmp_path):
    configured = os.environ.get("REPRO_TRACE_ARTIFACTS")
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    return str(tmp_path)


def run_and_trace(name, tmp_path):
    spec = SCENARIOS[name]
    scenario = scaled_copy(
        scenario_by_id(spec["torrent_id"]), duration=spec["duration"]
    )
    swarm_config = None
    if spec["faults"] is not None:
        swarm_config = SwarmConfig(
            seed=spec["seed"],
            duration=scenario.duration,
            faults=FAULT_PRESETS[spec["faults"]],
        )
    path = os.path.join(artifact_dir(tmp_path), "replay_%s.jsonl" % name)
    recorder = TraceRecorder(path)
    harness = build_experiment(
        scenario,
        seed=spec["seed"],
        swarm_config=swarm_config,
        trace_recorder=recorder,
    )
    live = harness.run()
    recorder.close()
    return live, path


def record_state(record):
    state = dict(vars(record))
    for key in (
        "presence",
        "local_interested_in_remote",
        "remote_interested_in_local",
    ):
        if key in state:
            tracker = state[key]
            state[key] = (tracker.intervals, tracker.open_since)
    return state


def assert_equivalent(live, replayed):
    """Field-level equality of everything the figures are computed from."""
    assert set(replayed.records) == set(live.records)
    for address in live.records:
        assert record_state(replayed.records[address]) == record_state(
            live.records[address]
        ), "record mismatch for %s" % address
    assert [vars(s) for s in replayed.snapshots] == [
        vars(s) for s in live.snapshots
    ]
    assert replayed.block_arrivals == live.block_arrivals
    assert replayed.piece_completions == live.piece_completions
    assert replayed.choke_rounds == live.choke_rounds
    assert replayed.hash_failures == live.hash_failures
    assert replayed.seed_state_at == live.seed_state_at
    assert replayed.endgame_at == live.endgame_at
    assert replayed.messages_sent == live.messages_sent
    assert replayed.messages_received == live.messages_received
    assert replayed.fault_counters == live.fault_counters
    assert replayed.leecher_interval == live.leecher_interval
    assert replayed.seed_interval == live.seed_interval
    assert replayed.peer.address == live.peer.address


def assert_same_figures(live, replayed):
    """The offline replayer must reproduce the paper figures exactly."""
    assert asdict(summarize_entropy(replayed)) == asdict(summarize_entropy(live))
    assert asdict(replication_series(replayed)) == asdict(
        replication_series(live)
    )
    for kind in ("piece", "block"):
        try:
            expected = interarrival_summary(live, kind=kind)
        except ValueError:
            with pytest.raises(ValueError):
                interarrival_summary(replayed, kind=kind)
            continue
        assert asdict(interarrival_summary(replayed, kind=kind)) == asdict(
            expected
        )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_differential_replay(name, tmp_path):
    live, path = run_and_trace(name, tmp_path)
    replayed = replay_instrumentation(path)
    assert replayed.replayed_from_events > 0
    assert_equivalent(live, replayed)
    assert_same_figures(live, replayed)


def test_replay_is_idempotent(tmp_path):
    live, path = run_and_trace("transient", tmp_path)
    first = replay_instrumentation(path)
    second = replay_instrumentation(path)
    assert_equivalent(first, second)
    assert [vars(s) for s in first.snapshots] == [vars(s) for s in second.snapshots]


def test_replay_from_recorder_object():
    spec = SCENARIOS["transient"]
    scenario = scaled_copy(
        scenario_by_id(spec["torrent_id"]), duration=spec["duration"]
    )
    recorder = TraceRecorder()
    harness = build_experiment(
        scenario, seed=spec["seed"], trace_recorder=recorder
    )
    live = harness.run()
    recorder.close()
    replayed = replay_instrumentation(recorder)
    assert_equivalent(live, replayed)
