"""Tests for the simulated tracker."""

import hashlib
from random import Random

from repro.tracker.sampling import SeedBiasedSampler
from repro.tracker.tracker import Tracker


def make_tracker(**kwargs):
    clock = {"now": 0.0}
    tracker = Tracker(Random(1), lambda: clock["now"], **kwargs)
    return tracker, clock


class TestAnnounce:
    def test_started_registers(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=50, is_seed=False)
        assert tracker.num_registered == 1

    def test_stopped_unregisters(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        tracker.announce("a", event="stopped", num_want=0, is_seed=False)
        assert tracker.num_registered == 0

    def test_peer_list_excludes_requester(self):
        tracker, __ = make_tracker()
        for name in "abcde":
            tracker.announce(name, event="started", num_want=0, is_seed=False)
        peers = tracker.announce("a", event="", num_want=50, is_seed=False)
        assert "a" not in peers
        assert set(peers) == set("bcde")

    def test_num_want_respected(self):
        tracker, __ = make_tracker()
        for index in range(100):
            tracker.announce("p%d" % index, event="started", num_want=0, is_seed=False)
        peers = tracker.announce("p0", event="", num_want=50, is_seed=False)
        assert len(peers) == 50
        assert len(set(peers)) == 50

    def test_zero_num_want(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        assert tracker.announce("b", event="started", num_want=0, is_seed=False) == []

    def test_sampling_is_random(self):
        tracker, __ = make_tracker()
        for index in range(60):
            tracker.announce("p%d" % index, event="started", num_want=0, is_seed=False)
        first = tracker.announce("p0", event="", num_want=20, is_seed=False)
        second = tracker.announce("p0", event="", num_want=20, is_seed=False)
        assert first != second  # astronomically unlikely to collide

    def test_completed_counted(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        tracker.announce("a", event="completed", num_want=0, is_seed=True)
        assert tracker.completed_count == 1


class TestRngDiscipline:
    """The announce sample is a pure function of (caller RNG, registry).

    Historically every sample came from one shared tracker stream over a
    dict-iteration-order candidate list, so any reordering of *other*
    peers' announces perturbed a peer's sample.  These tests pin the
    repaired contract (DESIGN.md §15).
    """

    #: Pinned sample for (60-peer registry in registration order,
    #: requester p3, num_want 20, caller rng Random(123)).  Changing the
    #: sampler's draw pattern or the registry order breaks this on
    #: purpose: it is the announce-sampling equivalent of the campaign
    #: manifest fingerprint.
    PINNED = "4fe06baadaa46c5d3ce1ce1aea28c0bceee3ff5d57d26cf131fec5c1a249e32e"

    @staticmethod
    def populate(tracker, num_want=0):
        for index in range(60):
            tracker.announce(
                "p%d" % index,
                event="started",
                num_want=num_want,
                is_seed=index % 4 == 0,
            )

    def test_caller_rng_sample_fingerprint(self):
        tracker, __ = make_tracker()
        self.populate(tracker)
        sample = tracker.announce(
            "p3", event="", num_want=20, is_seed=False, rng=Random(123)
        )
        digest = hashlib.sha256(repr(sample).encode()).hexdigest()
        assert digest == self.PINNED

    def test_sample_independent_of_shared_stream_consumption(self):
        # Interleaved announces by OTHER peers drain the tracker's own
        # fallback stream (num_want > 0, no caller rng would have hit it
        # pre-fix); the caller-RNG sample must not move.
        tracker, __ = make_tracker()
        self.populate(tracker, num_want=17)
        sample = tracker.announce(
            "p3", event="", num_want=20, is_seed=False, rng=Random(123)
        )
        digest = hashlib.sha256(repr(sample).encode()).hexdigest()
        assert digest == self.PINNED

    def test_fallback_stream_still_works_without_caller_rng(self):
        tracker, __ = make_tracker()
        self.populate(tracker)
        sample = tracker.announce("p3", event="", num_want=20, is_seed=False)
        assert len(sample) == 20
        assert "p3" not in sample

    def test_custom_sampler_injected(self):
        tracker, __ = make_tracker(sampler=SeedBiasedSampler(seed_fraction=1.0))
        self.populate(tracker)
        sample = tracker.announce(
            "p3", event="", num_want=10, is_seed=False, rng=Random(5)
        )
        # 15 seeds registered (every 4th of 60): an all-seed request is
        # satisfiable and the sampler must honour it.
        seeds = {"p%d" % index for index in range(60) if index % 4 == 0}
        assert len(sample) == 10
        assert set(sample) <= seeds


class TestScrape:
    def test_seed_leecher_split(self):
        tracker, __ = make_tracker()
        tracker.announce("s", event="started", num_want=0, is_seed=True)
        tracker.announce("l1", event="started", num_want=0, is_seed=False)
        tracker.announce("l2", event="started", num_want=0, is_seed=False)
        assert tracker.scrape() == (1, 2)

    def test_seed_transition_updates_scrape(self):
        tracker, __ = make_tracker()
        tracker.announce("x", event="started", num_want=0, is_seed=False)
        tracker.announce("x", event="completed", num_want=0, is_seed=True)
        assert tracker.scrape() == (1, 0)

    def test_history_records_time(self):
        tracker, clock = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        clock["now"] = 100.0
        tracker.announce("b", event="started", num_want=0, is_seed=True)
        history = tracker.history
        assert [s.time for s in history] == [0.0, 100.0]
        assert history[-1].seeds == 1
        assert history[-1].leechers == 1

    def test_registered_addresses(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        assert tracker.registered_addresses() == ["a"]
