"""Tests for the simulated tracker."""

from random import Random

from repro.tracker.tracker import Tracker


def make_tracker():
    clock = {"now": 0.0}
    tracker = Tracker(Random(1), lambda: clock["now"])
    return tracker, clock


class TestAnnounce:
    def test_started_registers(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=50, is_seed=False)
        assert tracker.num_registered == 1

    def test_stopped_unregisters(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        tracker.announce("a", event="stopped", num_want=0, is_seed=False)
        assert tracker.num_registered == 0

    def test_peer_list_excludes_requester(self):
        tracker, __ = make_tracker()
        for name in "abcde":
            tracker.announce(name, event="started", num_want=0, is_seed=False)
        peers = tracker.announce("a", event="", num_want=50, is_seed=False)
        assert "a" not in peers
        assert set(peers) == set("bcde")

    def test_num_want_respected(self):
        tracker, __ = make_tracker()
        for index in range(100):
            tracker.announce("p%d" % index, event="started", num_want=0, is_seed=False)
        peers = tracker.announce("p0", event="", num_want=50, is_seed=False)
        assert len(peers) == 50
        assert len(set(peers)) == 50

    def test_zero_num_want(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        assert tracker.announce("b", event="started", num_want=0, is_seed=False) == []

    def test_sampling_is_random(self):
        tracker, __ = make_tracker()
        for index in range(60):
            tracker.announce("p%d" % index, event="started", num_want=0, is_seed=False)
        first = tracker.announce("p0", event="", num_want=20, is_seed=False)
        second = tracker.announce("p0", event="", num_want=20, is_seed=False)
        assert first != second  # astronomically unlikely to collide

    def test_completed_counted(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        tracker.announce("a", event="completed", num_want=0, is_seed=True)
        assert tracker.completed_count == 1


class TestScrape:
    def test_seed_leecher_split(self):
        tracker, __ = make_tracker()
        tracker.announce("s", event="started", num_want=0, is_seed=True)
        tracker.announce("l1", event="started", num_want=0, is_seed=False)
        tracker.announce("l2", event="started", num_want=0, is_seed=False)
        assert tracker.scrape() == (1, 2)

    def test_seed_transition_updates_scrape(self):
        tracker, __ = make_tracker()
        tracker.announce("x", event="started", num_want=0, is_seed=False)
        tracker.announce("x", event="completed", num_want=0, is_seed=True)
        assert tracker.scrape() == (1, 0)

    def test_history_records_time(self):
        tracker, clock = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        clock["now"] = 100.0
        tracker.announce("b", event="started", num_want=0, is_seed=True)
        history = tracker.history
        assert [s.time for s in history] == [0.0, 100.0]
        assert history[-1].seeds == 1
        assert history[-1].leechers == 1

    def test_registered_addresses(self):
        tracker, __ = make_tracker()
        tracker.announce("a", event="started", num_want=0, is_seed=False)
        assert tracker.registered_addresses() == ["a"]
