"""Live announce-server conformance (``tracker`` marker).

Every test here starts real asyncio servers on localhost and drives
them through the async clients in :mod:`repro.tracker.client`.  The
centrepiece is the sim-vs-live differential: the same announce
sequence through the wire and through direct in-process service calls
must produce *byte-identical* bencoded responses.
"""

import asyncio
import hashlib
import struct

import pytest

from repro.tracker.client import (
    FederatedAnnouncer,
    TrackerEndpoint,
    announce_http,
    announce_udp,
)
from repro.tracker.server import (
    UDP_ERROR,
    TrackerServer,
    build_udp_announce,
    build_udp_connect,
    encode_result,
)
from repro.tracker.service import (
    AnnounceBudget,
    AnnounceRequest,
    TrackerService,
)
from repro.tracker.tracker import TrackerUnavailable
from repro.tracker.wire import decode_announce_response
from repro.protocol.bencode import bdecode

pytestmark = pytest.mark.tracker

INFOHASH = hashlib.sha1(b"conformance-torrent").digest()
TIMEOUT = 5.0


class _Clock:
    """Deterministic service clock so wire runs replay exactly."""

    def __init__(self, step=0.5):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_service(**kwargs):
    return TrackerService(_Clock(), seed=17, num_shards=4, **kwargs)


def announce_sequence(count=30):
    """A mixed, deterministic announce sequence (joins, refreshes,
    completions, departures)."""
    requests = []
    for index in range(count):
        address = "10.7.0.%d:6881" % (index % 12 + 1)
        if index < 12:
            event, is_seed = "started", index % 4 == 0
        elif index % 7 == 0:
            event, is_seed = "completed", True
        elif index % 11 == 0:
            event, is_seed = "stopped", False
        else:
            event, is_seed = "", index % 4 == 0
        requests.append(
            AnnounceRequest(
                infohash=INFOHASH,
                address=address,
                event=event,
                num_want=0 if event == "stopped" else 15,
                is_seed=is_seed,
                have_count=(index * 13) % 100,
            )
        )
    return requests


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60.0))


class TestHttpRoundTrip:
    def test_announce_returns_peers(self):
        async def scenario():
            async with TrackerServer(make_service()) as server:
                for request in announce_sequence(12):
                    last = await announce_http(
                        "127.0.0.1", server.http_port, request, TIMEOUT
                    )
                return last

        response = run(scenario())
        assert response.interval == 30 * 60
        assert response.complete + response.incomplete == 12
        assert len(response.peers) == 11  # everyone but the requester
        assert server_port_types(response)

    def test_scrape_over_http(self):
        async def scenario():
            async with TrackerServer(make_service()) as server:
                for request in announce_sequence(12):
                    await announce_http(
                        "127.0.0.1", server.http_port, request, TIMEOUT
                    )
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.http_port
                )
                from urllib.parse import quote_from_bytes

                writer.write(
                    b"GET /scrape?info_hash=%s HTTP/1.0\r\n\r\n"
                    % quote_from_bytes(INFOHASH).encode()
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw.partition(b"\r\n\r\n")[2]

        body = bdecode(run(scenario()))
        entry = body[b"files"][INFOHASH]
        assert entry[b"complete"] + entry[b"incomplete"] == 12
        assert entry[b"downloaded"] == 0

    def test_malformed_requests_get_failure_responses(self):
        service = make_service()
        server = TrackerServer(service)
        for line, fragment in (
            ("POST /announce HTTP/1.0", b"only GET"),
            ("GET /nonsense HTTP/1.0", b"unknown path"),
            ("GET /announce?port=1 HTTP/1.0", b"info_hash"),
            ("GET /announce?info_hash=x&event=explode HTTP/1.0", b"bad announce"),
            ("garbage", b""),
        ):
            body, status = server.handle_http_request(line, "127.0.0.1")
            assert status == 400
            assert b"failure reason" in body
            assert fragment in body
        # None of the garbage touched the registry.
        assert service.store.total_swarms == 0


def server_port_types(response):
    return all(
        isinstance(host, str) and 0 < port < 65536
        for host, port in response.peers
    )


class TestUdpRoundTrip:
    def test_connect_then_announce(self):
        async def scenario():
            async with TrackerServer(make_service()) as server:
                for request in announce_sequence(12):
                    last = await announce_udp(
                        "127.0.0.1", server.udp_port, request, TIMEOUT
                    )
                return last

        response = run(scenario())
        assert response.interval == 30 * 60
        assert len(response.peers) == 11
        assert server_port_types(response)

    def test_bogus_datagrams_dropped_or_errored(self):
        server = TrackerServer(make_service())
        # Too short: dropped silently (no amplification for junk).
        assert server.handle_datagram(b"\x00" * 8, ("127.0.0.1", 9)) is None
        # Bad magic on a connect-sized packet: dropped.
        assert (
            server.handle_datagram(
                struct.pack(">qii", 0xDEAD, 0, 1), ("127.0.0.1", 9)
            )
            is None
        )
        # Announce with an unknown connection id: explicit error action.
        packet = build_udp_announce(
            connection_id=999_999,
            transaction_id=7,
            request=AnnounceRequest(infohash=INFOHASH, address="10.0.0.1:6881"),
            port=6881,
        )
        reply = server.handle_datagram(packet, ("127.0.0.1", 9))
        action, tid = struct.unpack(">ii", reply[:8])
        assert action == UDP_ERROR and tid == 7
        assert b"connection id" in reply[8:]

    def test_connect_issues_fresh_connection_ids(self):
        server = TrackerServer(make_service())
        first = server.handle_datagram(build_udp_connect(1), ("127.0.0.1", 1))
        second = server.handle_datagram(build_udp_connect(2), ("127.0.0.1", 2))
        __, __, id_a = struct.unpack(">iiq", first)
        __, __, id_b = struct.unpack(">iiq", second)
        assert id_a != id_b


class TestSimVsLiveDifferential:
    def test_wire_responses_byte_identical_to_in_process(self):
        # The same seed, same announce sequence, through two frontends:
        # direct service calls encoded with the shared encoder vs the
        # HTTP server over localhost.  Byte equality, not approximate.
        requests = announce_sequence(30)

        in_process = []
        service = make_service()
        for request in requests:
            try:
                in_process.append(encode_result(service.announce(request)))
            except TrackerUnavailable as exc:
                in_process.append(repr(str(exc)).encode())

        async def scenario():
            bodies = []
            async with TrackerServer(make_service()) as server:
                for request in requests:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.http_port
                    )
                    from repro.tracker.client import build_announce_target

                    target = build_announce_target(
                        request, int(request.address.rpartition(":")[2])
                    )
                    writer.write(
                        b"GET %s HTTP/1.0\r\n\r\n" % target.encode("latin-1")
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    bodies.append(raw.partition(b"\r\n\r\n")[2])
            return bodies

        over_wire = run(scenario())
        assert over_wire == in_process

    def test_sampler_choice_survives_the_wire(self):
        # A non-default sampler spec produces the same sample through
        # the wire as in process (the per-request RNG derivation is a
        # pure function of the announce sequence, not the frontend).
        from repro.tracker.sampling import make_sampler

        def build():
            return TrackerService(
                _Clock(), seed=5, num_shards=2,
                sampler=make_sampler("seed-biased:seed_fraction=0.5"),
            )

        requests = announce_sequence(20)
        direct = build()
        expected = [encode_result(direct.announce(r)) for r in requests]

        async def scenario():
            bodies = []
            async with TrackerServer(build()) as server:
                for request in requests:
                    response = await announce_http(
                        "127.0.0.1", server.http_port, request, TIMEOUT
                    )
                    bodies.append(response)
            return bodies

        responses = run(scenario())
        decoded = [decode_announce_response(b) for b in expected]
        assert responses == decoded


class TestLoadSheddingOverWire:
    def test_rejection_is_a_failure_response_not_a_drop(self):
        budget = AnnounceBudget(announces_per_second=0.1, window=5.0,
                                reject_factor=2.0)

        async def scenario():
            async with TrackerServer(make_service(budget=budget)) as server:
                failures = 0
                for request in announce_sequence(25):
                    if request.event == "stopped":
                        continue
                    try:
                        await announce_http(
                            "127.0.0.1", server.http_port, request, TIMEOUT
                        )
                    except TrackerUnavailable as exc:
                        failures += 1
                        assert "retry in" in str(exc)
                return failures, server.service.rejected_announces

        failures, rejected = run(scenario())
        assert failures > 0
        assert failures == rejected


class TestLiveFederationFailover:
    def test_dead_endpoint_skipped_deterministically(self):
        async def scenario():
            service = make_service()
            async with TrackerServer(service) as live:
                # A dead TCP endpoint: bind-then-close guarantees a
                # connection refusal, never a timeout.
                probe = await asyncio.start_server(
                    lambda r, w: None, "127.0.0.1", 0
                )
                dead_port = probe.sockets[0].getsockname()[1]
                probe.close()
                await probe.wait_closed()

                announcer = FederatedAnnouncer(
                    endpoints=[
                        TrackerEndpoint("127.0.0.1", dead_port),
                        TrackerEndpoint("127.0.0.1", live.http_port),
                        TrackerEndpoint("127.0.0.1", live.udp_port, "udp"),
                    ],
                    timeout=TIMEOUT,
                )
                for request in announce_sequence(10):
                    await announcer.announce(request)
                return announcer

        announcer = run(scenario())
        live_key = [k for k in announcer.served_by if k.startswith("http")]
        assert announcer.failover_count == 10
        assert len(live_key) == 1
        assert announcer.served_by[live_key[0]] == 10
        # The UDP fallback never had to serve: tier order is respected.
        assert not any(k.startswith("udp") for k in announcer.served_by)

    def test_all_endpoints_dead_raises(self):
        async def scenario():
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            dead_port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            announcer = FederatedAnnouncer(
                endpoints=[TrackerEndpoint("127.0.0.1", dead_port)],
                timeout=1.0,
            )
            with pytest.raises(TrackerUnavailable):
                await announcer.announce(
                    AnnounceRequest(infohash=INFOHASH, address="10.0.0.1:6881")
                )

        run(scenario())

    def test_udp_tier_serves_when_http_down(self):
        async def scenario():
            async with TrackerServer(make_service()) as live:
                probe = await asyncio.start_server(
                    lambda r, w: None, "127.0.0.1", 0
                )
                dead_port = probe.sockets[0].getsockname()[1]
                probe.close()
                await probe.wait_closed()
                announcer = FederatedAnnouncer(
                    endpoints=[
                        TrackerEndpoint("127.0.0.1", dead_port),
                        TrackerEndpoint("127.0.0.1", live.udp_port, "udp"),
                    ],
                    timeout=TIMEOUT,
                )
                for request in announce_sequence(12):
                    response = await announcer.announce(request)
                return announcer, response

        announcer, response = run(scenario())
        assert announcer.failover_count == 12
        assert len(response.peers) == 11
