"""Tests for the tracker service tier: sharded store, samplers, load
shedding, per-request RNG derivation, and the in-process federation.

The live-server conformance tests (``tracker`` marker) live in
``test_tracker_server.py``; everything here is synchronous and runs in
the tier-1 suite.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st
from random import Random

from repro.sim.config import KIB, FaultConfig, SwarmConfig
from repro.tracker.federation import TrackerFederation
from repro.tracker.sampling import (
    RarityAwareSampler,
    SeedBiasedSampler,
    UniformSampler,
    make_sampler,
    parse_sampler_spec,
)
from repro.tracker.service import (
    AnnounceBudget,
    AnnounceRequest,
    TrackerOverloaded,
    TrackerService,
)
from repro.tracker.state import ShardedSwarmStore, SwarmState, shard_of
from repro.tracker.tracker import TrackerUnavailable
from repro.tracker.wire import pack_peers, unpack_peers

from tests.conftest import fast_config, tiny_swarm

HASH_A = hashlib.sha1(b"torrent-a").digest()
HASH_B = hashlib.sha1(b"torrent-b").digest()


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_service(**kwargs):
    clock = _Clock()
    return TrackerService(clock, seed=11, **kwargs), clock


def populate(service, infohash=HASH_A, count=40, seeds=10):
    for index in range(count):
        service.announce(
            AnnounceRequest(
                infohash=infohash,
                address="10.0.0.%d:6881" % (index + 1),
                event="started",
                num_want=0,
                is_seed=index < seeds,
                have_count=100 if index < seeds else index,
            )
        )


class TestShardedStore:
    def test_shard_placement_is_stable(self):
        # CRC-32, not the salted builtin hash: placement must be a pure
        # function of the infohash across processes.
        assert shard_of(HASH_A, 8) == shard_of(HASH_A, 8)
        store = ShardedSwarmStore(8)
        assert store.shard_index(HASH_A) == shard_of(HASH_A, 8)

    def test_get_or_create_reuses_state(self):
        store = ShardedSwarmStore(4)
        state = store.get_or_create(HASH_A)
        assert store.get_or_create(HASH_A) is state
        assert store.get(HASH_B) is None
        assert store.total_swarms == 1

    def test_rebalance_preserves_swarm_objects(self):
        store = ShardedSwarmStore(1)
        hashes = [hashlib.sha1(b"t%d" % i).digest() for i in range(32)]
        states = {h: store.get_or_create(h) for h in hashes}
        for h in hashes:
            states[h].update("1.2.3.4:1", "started", False, 0.0)
        moved = store.rebalance(8)
        # With one source shard, every swarm not mapping to shard 0
        # under the new count moves; the objects themselves are reused.
        assert moved == sum(1 for h in hashes if shard_of(h, 8) != 0)
        assert store.num_shards == 8
        for h in hashes:
            assert store.get(h) is states[h]
        assert store.total_peers == 32

    def test_rebalance_rejects_bad_count(self):
        with pytest.raises(ValueError):
            ShardedSwarmStore(4).rebalance(0)

    def test_stats_account_all_shards(self):
        store = ShardedSwarmStore(4)
        store.get_or_create(HASH_A).update("a:1", "started", False, 0.0)
        store.get_or_create(HASH_B).update("b:1", "started", True, 0.0)
        stats = store.stats()
        assert len(stats) == 4
        assert sum(s.swarms for s in stats) == 2
        assert sum(s.peers for s in stats) == 2
        assert sum(s.announces for s in stats) == 2


class TestSwarmStateRoles:
    def test_seed_transition_moves_role_index(self):
        state = SwarmState()
        state.update("x:1", "started", False, 0.0)
        assert state.scrape() == (0, 1)
        state.update("x:1", "completed", True, 1.0)
        assert state.scrape() == (1, 0)
        assert state.completed_count == 1

    def test_stopped_detaches_entry(self):
        state = SwarmState()
        state.update("x:1", "started", True, 0.0)
        state.update("x:1", "stopped", True, 1.0)
        assert len(state) == 0
        assert state.scrape() == (0, 0)
        # A stray stop for an unknown peer is harmless.
        state.update("ghost:1", "stopped", False, 2.0)
        assert len(state) == 0


class TestSamplers:
    @given(
        population=st.integers(min_value=0, max_value=80),
        num_want=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_sample_properties(self, population, num_want, seed):
        state = SwarmState()
        for index in range(population):
            state.update("p%d" % index, "started", index % 3 == 0, 0.0)
        sample = UniformSampler().sample(state, "p0", num_want, Random(seed))
        assert len(sample) == min(num_want, max(0, population - 1))
        assert "p0" not in sample
        assert len(set(sample)) == len(sample)

    def test_seed_biased_reserves_fraction(self):
        state = SwarmState()
        for index in range(40):
            state.update("p%d" % index, "started", index < 10, 0.0)
        sampler = SeedBiasedSampler(seed_fraction=0.5)
        seeds = {"p%d" % index for index in range(10)}
        sample = sampler.sample(state, "p39", 20, Random(3))
        assert len(sample) == 20
        assert sum(1 for a in sample if a in seeds) == 10

    def test_seed_biased_tops_up_from_leechers(self):
        state = SwarmState()
        for index in range(30):
            state.update("p%d" % index, "started", index < 2, 0.0)
        sample = SeedBiasedSampler(seed_fraction=0.5).sample(
            state, "p29", 20, Random(3)
        )
        # Only 2 seeds exist; the other 18 slots fill from leechers.
        assert len(sample) == 20
        assert len(set(sample)) == 20
        assert "p29" not in sample

    def test_rarity_aware_prefers_provisioned_peers(self):
        state = SwarmState()
        for index in range(100):
            state.update(
                "p%d" % index, "started", False, 0.0,
                have_count=90 if index < 20 else 1,
            )
        sampler = RarityAwareSampler(bias=3.0)
        rich = {"p%d" % index for index in range(20)}
        hits = 0
        for seed in range(30):
            sample = sampler.sample(state, "p99", 10, Random(seed))
            assert "p99" not in sample
            hits += sum(1 for a in sample if a in rich)
        # 20% of the population, heavily weighted: well above the
        # uniform expectation of 2-in-10 per draw.
        assert hits / 30 > 5

    def test_rarity_aware_is_deterministic_per_rng(self):
        state = SwarmState()
        for index in range(50):
            state.update("p%d" % index, "started", False, 0.0, have_count=index)
        sampler = RarityAwareSampler(bias=1.0)
        assert sampler.sample(state, "p0", 10, Random(9)) == sampler.sample(
            state, "p0", 10, Random(9)
        )

    def test_spec_round_trip(self):
        for spec in ("uniform", "seed-biased:seed_fraction=0.25",
                     "rarity-aware:bias=-2"):
            assert make_sampler(spec).spec() == spec

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            parse_sampler_spec("nonsense")
        with pytest.raises(ValueError):
            parse_sampler_spec("uniform:oops")
        with pytest.raises(ValueError):
            SeedBiasedSampler(seed_fraction=1.5)


class TestCompactEncoding:
    @given(
        peers=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=1, max_value=65535),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_round_trip(self, peers):
        dotted = [
            (
                "%d.%d.%d.%d"
                % (ip >> 24 & 255, ip >> 16 & 255, ip >> 8 & 255, ip & 255),
                port,
            )
            for ip, port in peers
        ]
        blob = pack_peers(dotted)
        assert len(blob) == 6 * len(dotted)
        assert unpack_peers(blob) == dotted

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            pack_peers([("1.2.3.4", 0)])
        with pytest.raises(ValueError):
            pack_peers([("1.2.3.4", 65536)])

    def test_ragged_blob_rejected(self):
        with pytest.raises(ValueError):
            unpack_peers(b"\x01\x02\x03")


class TestServiceAnnounce:
    def test_zero_live_peers_announce(self):
        # The very first announce of a swarm: nobody else is registered,
        # the answer must be a well-formed empty peer list, not an error.
        service, __ = make_service()
        result = service.announce(
            AnnounceRequest(infohash=HASH_A, address="10.0.0.1:6881",
                            event="started", num_want=50)
        )
        assert result.peers == []
        assert (result.seeds, result.leechers) == (0, 1)

    def test_announce_after_everyone_left(self):
        service, __ = make_service()
        populate(service, count=3, seeds=0)
        for index in range(3):
            service.announce(
                AnnounceRequest(infohash=HASH_A,
                                address="10.0.0.%d:6881" % (index + 1),
                                event="stopped", num_want=0)
            )
        result = service.announce(
            AnnounceRequest(infohash=HASH_A, address="10.0.9.9:6881",
                            event="started", num_want=50)
        )
        assert result.peers == []
        assert (result.seeds, result.leechers) == (0, 1)

    def test_request_rng_reproducible_across_services(self):
        # Two services with the same seed answer the same announce
        # sequence identically — the wire-frontend determinism contract.
        samples = []
        for __ in range(2):
            service, __clock = make_service(num_shards=4)
            populate(service)
            result = service.announce(
                AnnounceRequest(infohash=HASH_A, address="10.0.0.5:6881",
                                event="", num_want=20)
            )
            samples.append(result.peers)
        assert samples[0] == samples[1]
        assert len(samples[0]) == 20

    def test_registration_order_not_dict_order(self):
        # Samples are drawn over the dense registration-order list; a
        # same-seed service populated in the same order yields identical
        # samples regardless of how many OTHER swarms exist (which would
        # shift dict layouts).
        service_a, __ = make_service(num_shards=2)
        populate(service_a)
        service_b, __ = make_service(num_shards=2)
        for index in range(7):
            service_b.announce(
                AnnounceRequest(
                    infohash=hashlib.sha1(b"noise-%d" % index).digest(),
                    address="10.9.0.%d:6881" % (index + 1),
                    event="started", num_want=0,
                )
            )
        populate(service_b)
        request = AnnounceRequest(infohash=HASH_A, address="10.0.0.5:6881",
                                  event="", num_want=15)
        assert service_a.announce(request).peers == service_b.announce(request).peers

    def test_outage_window_rejects(self):
        service, clock = make_service()
        service.set_outages([(10.0, 5.0)])
        clock.now = 12.0
        with pytest.raises(TrackerUnavailable):
            service.announce(
                AnnounceRequest(infohash=HASH_A, address="a:1", num_want=0)
            )
        assert service.failed_announce_count == 1
        clock.now = 15.0
        service.announce(
            AnnounceRequest(infohash=HASH_A, address="a:1", num_want=0)
        )

    def test_rebalance_during_outage_preserves_registry(self):
        # The maintenance story: take the announce path down, re-home
        # the shards, bring it back — nothing registered is lost and
        # placement follows the new shard count.
        service, clock = make_service(num_shards=2)
        populate(service, count=20, seeds=5)
        populate(service, infohash=HASH_B, count=10, seeds=2)
        service.set_outages([(100.0, 50.0)])
        clock.now = 120.0
        with pytest.raises(TrackerUnavailable):
            service.announce(
                AnnounceRequest(infohash=HASH_A, address="x:1", num_want=0)
            )
        service.store.rebalance(7)
        assert service.store.num_shards == 7
        assert service.store.total_peers == 30
        clock.now = 200.0
        result = service.announce(
            AnnounceRequest(infohash=HASH_A, address="10.0.0.1:6881",
                            event="", num_want=10, is_seed=True)
        )
        assert len(result.peers) == 10
        assert service.scrape(HASH_A) == (5, 15)
        assert service.scrape(HASH_B) == (2, 8)
        assert service.store.shard_index(HASH_A) == shard_of(HASH_A, 7)

    def test_stats_surface(self):
        service, __ = make_service(num_shards=3)
        populate(service, count=5, seeds=1)
        stats = service.stats()
        assert stats["announces"] == 5
        assert stats["swarms"] == 1
        assert stats["peers"] == 5
        assert stats["sampler"] == "uniform"
        assert len(stats["shards"]) == 3


class TestLoadShedding:
    def burst(self, service, clock, count, event=""):
        outcomes = []
        for index in range(count):
            try:
                result = service.announce(
                    AnnounceRequest(
                        infohash=HASH_A,
                        address="10.1.%d.%d:6881" % (index // 250, index % 250 + 1),
                        event=event,
                        num_want=0,
                    )
                )
                outcomes.append(result.shed_factor)
            except TrackerOverloaded as exc:
                outcomes.append(exc)
        return outcomes

    def test_interval_scales_with_overload(self):
        budget = AnnounceBudget(announces_per_second=2.0, window=5.0,
                                reject_factor=1000.0)
        service, clock = make_service(budget=budget, interval=60.0)
        # 30 announces in one window = 6/s = 3x the 2/s budget.
        outcomes = self.burst(service, clock, 30)
        assert outcomes[0] == 1.0  # under budget at first
        assert outcomes[-1] == pytest.approx(3.0)
        assert service.shed_announces > 0
        result = service.announce(
            AnnounceRequest(infohash=HASH_A, address="10.2.0.1:6881", num_want=0)
        )
        assert result.interval == pytest.approx(60.0 * result.shed_factor)

    def test_interval_stretch_is_capped(self):
        budget = AnnounceBudget(announces_per_second=0.2, window=5.0,
                                max_interval_factor=4.0, reject_factor=1000.0)
        service, clock = make_service(budget=budget)
        outcomes = self.burst(service, clock, 200)
        assert outcomes[-1] == 4.0

    def test_reject_past_hard_limit(self):
        budget = AnnounceBudget(announces_per_second=1.0, window=5.0,
                                reject_factor=4.0)
        service, clock = make_service(budget=budget, interval=45.0)
        outcomes = self.burst(service, clock, 60)
        rejected = [o for o in outcomes if isinstance(o, TrackerOverloaded)]
        assert rejected
        assert rejected[0].retry_after == 45.0
        assert service.rejected_announces == len(rejected)

    def test_stopped_announces_never_shed(self):
        # Losing a departure would leak a registry entry forever; the
        # shedding path must always let "stopped" through.
        budget = AnnounceBudget(announces_per_second=1.0, window=5.0,
                                reject_factor=2.0)
        service, clock = make_service(budget=budget)
        self.burst(service, clock, 50)  # drive the rate far past reject
        result = service.announce(
            AnnounceRequest(infohash=HASH_A, address="10.1.0.1:6881",
                            event="stopped", num_want=0)
        )
        assert result.peers == []

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            AnnounceBudget(announces_per_second=0.0)
        with pytest.raises(ValueError):
            AnnounceBudget(announces_per_second=1.0, reject_factor=1.0)
        with pytest.raises(ValueError):
            AnnounceBudget(announces_per_second=1.0, max_interval_factor=0.5)


class TestDeadPeerExpiry:
    """Tracker-side reaping of peers whose announces stopped arriving."""

    def announce(self, service, address, event="started", **kwargs):
        return service.announce(
            AnnounceRequest(
                infohash=HASH_A, address=address, event=event, **kwargs
            )
        )

    def test_silent_peer_reaped_after_k_intervals(self):
        service, clock = make_service(interval=100.0, expiry_intervals=3.0)
        self.announce(service, "10.0.0.1:6881")  # then goes silent
        for tick in range(1, 5):
            clock.now = tick * 100.0
            self.announce(service, "10.0.0.2:6881")
            if clock.now <= 300.0:
                # Not yet 3 full intervals of silence: still registered.
                assert "10.0.0.1:6881" in service.store.get(HASH_A).entries
        # t=400: the silent peer missed >3 intervals; the live peer's
        # announce lazily reaped it.
        state = service.store.get(HASH_A)
        assert "10.0.0.1:6881" not in state.entries
        assert "10.0.0.2:6881" in state.entries
        assert service.expired_peers == 1
        assert service.stats()["expired"] == 1

    def test_reaped_peer_never_sampled(self):
        service, clock = make_service(interval=10.0, expiry_intervals=2.0)
        self.announce(service, "10.0.0.1:6881")
        clock.now = 100.0
        result = self.announce(service, "10.0.0.2:6881", num_want=50)
        assert "10.0.0.1:6881" not in result.peers
        assert (result.seeds, result.leechers) == (0, 1)

    def test_expiry_preserves_announce_seq(self):
        # announce_seq feeds the per-request RNG derivation: reaping a
        # peer must never rewind or advance it.
        state = SwarmState(HASH_A)
        state.update("10.0.0.1:6881", event="started", is_seed=False, now=0.0)
        state.update("10.0.0.2:6881", event="started", is_seed=True, now=0.0)
        seq = state.announce_seq
        dead = state.expire(now=1000.0, max_age=10.0)
        assert sorted(dead) == ["10.0.0.1:6881", "10.0.0.2:6881"]
        assert state.announce_seq == seq

    def test_expire_cleans_role_indexes(self):
        state = SwarmState(HASH_A)
        state.update("s:1", event="started", is_seed=True, now=0.0)
        state.update("l:1", event="started", is_seed=False, now=0.0)
        state.update("l:2", event="started", is_seed=False, now=50.0)
        state.expire(now=60.0, max_age=30.0)
        assert state.addresses() == ["l:2"]
        assert state.scrape() == (0, 1)
        assert "s:1" not in state.seeds and "l:1" not in state.leechers

    def test_boundary_age_survives(self):
        # Exactly max_age old is still alive; only *older* peers die.
        state = SwarmState(HASH_A)
        state.update("10.0.0.1:6881", event="started", is_seed=False, now=0.0)
        assert state.expire(now=30.0, max_age=30.0) == []
        assert state.expire(now=30.1, max_age=30.0) == ["10.0.0.1:6881"]

    def test_reap_sweeps_idle_swarms_but_keeps_them(self):
        # Lazy expiry only fires on announce; the full-store reap is
        # what cleans swarms whose traffic stopped entirely — without
        # dropping the SwarmState (its announce_seq must survive).
        service, clock = make_service(interval=10.0, expiry_intervals=2.0)
        self.announce(service, "10.0.0.1:6881")
        service.announce(
            AnnounceRequest(infohash=HASH_B, address="10.0.0.9:6881",
                            event="started")
        )
        seq = service.store.get(HASH_A).announce_seq
        clock.now = 500.0
        assert service.reap() == 2
        assert service.expired_peers == 2
        state = service.store.get(HASH_A)
        assert state is not None and len(state) == 0
        assert state.announce_seq == seq
        assert service.store.total_swarms == 2

    def test_no_expiry_by_default(self):
        service, clock = make_service(interval=10.0)
        self.announce(service, "10.0.0.1:6881")
        clock.now = 1e9
        assert service.reap() == 0
        assert "10.0.0.1:6881" in service.store.get(HASH_A).entries

    def test_expiry_validation(self):
        with pytest.raises(ValueError):
            make_service(expiry_intervals=0.0)


class TestFederation:
    def make_federation(self, replicas=3):
        clock = _Clock()
        federation = TrackerFederation(Random(2), lambda: clock.now,
                                       replicas=replicas)
        return federation, clock

    def test_replica_zero_serves_by_default(self):
        federation, __ = self.make_federation()
        federation.announce("a:1", event="started", num_want=0, is_seed=False)
        assert federation.served_by == [1, 0, 0]
        assert federation.failover_count == 0

    def test_failover_order_is_tier_order(self):
        federation, clock = self.make_federation()
        federation.set_replica_outages(0, [(0.0, 100.0)])
        federation.set_replica_outages(1, [(0.0, 50.0)])
        clock.now = 10.0  # 0 and 1 down -> replica 2 serves
        federation.announce("a:1", event="started", num_want=0, is_seed=False)
        clock.now = 60.0  # only 0 down -> replica 1 serves
        federation.announce("a:1", event="", num_want=0, is_seed=False)
        clock.now = 200.0  # all up -> replica 0 serves
        federation.announce("a:1", event="", num_want=0, is_seed=False)
        assert federation.served_by == [1, 1, 1]
        assert federation.failover_count == 2

    def test_all_replicas_down_raises(self):
        federation, clock = self.make_federation(replicas=2)
        federation.set_replica_outages(0, [(0.0, 10.0)])
        federation.set_replica_outages(1, [(0.0, 10.0)])
        clock.now = 5.0
        assert federation.is_down(5.0)
        with pytest.raises(TrackerUnavailable):
            federation.announce("a:1", event="", num_want=0, is_seed=False)
        assert federation.failed_announce_count == 1

    def test_registry_shared_across_replicas(self):
        federation, clock = self.make_federation(replicas=2)
        federation.announce("a:1", event="started", num_want=0, is_seed=True)
        federation.set_replica_outages(0, [(0.0, 100.0)])
        clock.now = 50.0
        peers = federation.announce(
            "b:1", event="started", num_want=10, is_seed=False, rng=Random(4)
        )
        # Replica 1 serves from the same registry replica 0 filled.
        assert peers == ["a:1"]
        assert federation.scrape() == (1, 1)


class TestFederationUnderFaultPlan:
    """End-to-end: FaultConfig.replica_outages through a simulated swarm."""

    @staticmethod
    def run_swarm(seed=21):
        faults = FaultConfig(
            tracker_replicas=2,
            # Replica 0 is down for the whole mid-run window; announces
            # (join announces of churn arrivals and periodic refreshes)
            # must fail over to replica 1 rather than backing off.
            replica_outages=((0, 0.0, 10_000.0),),
        )
        swarm = tiny_swarm(
            num_pieces=12,
            seed=seed,
            swarm_config=SwarmConfig(seed=seed, faults=faults,
                                     announce_interval=60.0),
        )
        swarm.add_peer(config=fast_config(), is_seed=True)
        for __ in range(3):
            swarm.add_peer(config=fast_config(upload=4 * KIB))
        result = swarm.run(400.0)
        return swarm, result

    def test_failover_keeps_swarm_alive(self):
        swarm, result = self.run_swarm()
        assert len(result.completions) == 3
        assert swarm.tracker.served_by[0] == 0
        assert swarm.tracker.served_by[1] > 0
        assert swarm.tracker.failover_count == swarm.tracker.served_by[1]
        assert swarm.tracker.failed_announce_count == 0

    def test_same_seed_fails_over_identically(self):
        swarm_a, result_a = self.run_swarm()
        swarm_b, result_b = self.run_swarm()
        assert swarm_a.tracker.served_by == swarm_b.tracker.served_by
        assert swarm_a.tracker.failover_count == swarm_b.tracker.failover_count
        assert result_a.completions == result_b.completions

    def test_replica_outages_without_federation_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(tracker_replicas=1, replica_outages=((1, 0.0, 5.0),))
        # Index validation happens at config construction; the swarm
        # wiring rejects a single-replica config that somehow carries
        # replica windows (bypassing __post_init__) as well.
        faults = FaultConfig(tracker_replicas=2,
                             replica_outages=((1, 0.0, 5.0),))
        object.__setattr__(faults, "tracker_replicas", 1)
        with pytest.raises(ValueError):
            tiny_swarm(swarm_config=SwarmConfig(seed=1, faults=faults))
