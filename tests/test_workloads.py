"""Tests for the Table-I scenarios and capacity distributions."""

from random import Random

import pytest

from repro.sim.config import KIB
from repro.workloads import (
    INTERNET_2005,
    TABLE1,
    CapacityClass,
    CapacityDistribution,
    build_experiment,
    scaled_copy,
    scenario_by_id,
    uniform_capacity,
)
from repro.workloads.torrents import MAX_SIMULATED_PEERS


class TestCapacities:
    def test_sample_returns_known_class(self):
        rng = Random(1)
        known = {(c.upload, c.download) for c in INTERNET_2005.classes}
        for __ in range(100):
            assert INTERNET_2005.sample(rng) in known

    def test_weights_respected(self):
        distribution = CapacityDistribution(
            [
                CapacityClass(0.9, 10.0, None, "a"),
                CapacityClass(0.1, 99.0, None, "b"),
            ]
        )
        rng = Random(2)
        samples = [distribution.sample(rng)[0] for __ in range(2000)]
        share_slow = samples.count(10.0) / len(samples)
        assert 0.85 < share_slow < 0.95

    def test_uniform(self):
        distribution = uniform_capacity(42.0, 100.0)
        assert distribution.sample(Random(1)) == (42.0, 100.0)

    def test_mean_upload(self):
        distribution = uniform_capacity(42.0)
        assert distribution.mean_upload() == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityDistribution([])
        with pytest.raises(ValueError):
            CapacityDistribution([CapacityClass(0.0, 1.0, None)])


class TestTable1:
    def test_26_torrents(self):
        assert len(TABLE1) == 26
        assert [scenario.torrent_id for scenario in TABLE1] == list(range(1, 27))

    def test_paper_columns_preserved(self):
        t8 = scenario_by_id(8)
        assert (t8.paper_seeds, t8.paper_leechers) == (1, 861)
        assert t8.paper_size_mb == 3000
        t26 = scenario_by_id(26)
        assert (t26.paper_seeds, t26.paper_leechers) == (12612, 7052)

    def test_ratio_or_transient_flag(self):
        transient_ids = {s.torrent_id for s in TABLE1 if s.transient}
        assert transient_ids == {1, 2, 4, 5, 6, 8, 9}

    def test_population_bounded(self):
        for scenario in TABLE1:
            assert 0 < scenario.seeds + scenario.leechers <= MAX_SIMULATED_PEERS + 2

    def test_ratio_roughly_preserved(self):
        for scenario in TABLE1:
            if scenario.paper_seeds == 0 or scenario.paper_leechers < 10:
                continue
            if scenario.seeds + scenario.leechers < MAX_SIMULATED_PEERS:
                continue  # not scaled
            paper = scenario.paper_ratio
            scaled = scenario.scaled_ratio
            assert scaled == pytest.approx(paper, rel=0.6, abs=0.05)

    def test_pieces_scale_with_size(self):
        small = scenario_by_id(19)  # 6 MB
        large = scenario_by_id(8)  # 3000 MB
        assert small.num_pieces < large.num_pieces

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            scenario_by_id(99)

    def test_scaled_copy(self):
        base = scenario_by_id(7)
        copy = scaled_copy(base, num_pieces=10, duration=100.0)
        assert copy.num_pieces == 10
        assert copy.duration == 100.0
        assert copy.torrent_id == base.torrent_id
        assert base.num_pieces != 10  # original untouched


class TestBuildExperiment:
    @pytest.fixture(scope="class")
    def small_run(self):
        scenario = scaled_copy(
            scenario_by_id(13),
            seeds=2,
            leechers=8,
            num_pieces=16,
            duration=400.0,
            arrival_rate=0.01,
            local_join_time=10.0,
        )
        harness = build_experiment(scenario, seed=5)
        return harness

    def test_local_peer_exists_after_build(self, small_run):
        assert small_run.local_peer is not None
        assert small_run.local_peer.online

    def test_local_uses_paper_defaults(self, small_run):
        config = small_run.local_peer.config
        assert config.upload_capacity == 20 * KIB
        assert config.download_capacity is None
        assert config.max_peer_set == 80
        assert config.unchoke_slots == 4

    def test_run_produces_trace(self, small_run):
        trace = small_run.run()
        assert trace.piece_completions  # the local peer downloaded
        assert len(trace.records) >= 5

    def test_transient_scenario_starts_with_rare_pieces(self):
        scenario = scaled_copy(
            scenario_by_id(8), seeds=1, leechers=6, num_pieces=12,
            duration=60.0, arrival_rate=0.0, local_join_time=5.0,
        )
        harness = build_experiment(scenario, seed=5)
        # Right after the build, pieces only exist at the initial seed.
        assert harness.swarm.min_global_copies() <= 1
        assert harness.swarm.is_transient()

    def test_steady_scenario_starts_replicated(self):
        scenario = scaled_copy(
            scenario_by_id(13), seeds=2, leechers=10, num_pieces=12,
            duration=60.0, arrival_rate=0.0, local_join_time=25.0,
        )
        harness = build_experiment(scenario, seed=5)
        assert harness.swarm.min_global_copies() >= 2

    def test_population_override_selector(self):
        from repro.core.rarest_first import SequentialSelector

        scenario = scaled_copy(
            scenario_by_id(13), seeds=1, leechers=4, num_pieces=8,
            duration=30.0, arrival_rate=0.0, local_join_time=5.0,
        )
        harness = build_experiment(
            scenario, seed=5, population_selector_factory=SequentialSelector
        )
        remotes = [
            peer
            for peer in harness.swarm.peers.values()
            if peer is not harness.local_peer
        ]
        assert remotes
        assert all(
            isinstance(peer.selector, SequentialSelector) for peer in remotes
        )
        assert not isinstance(harness.local_peer.selector, SequentialSelector)

    def test_free_riders_added(self):
        scenario = scaled_copy(
            scenario_by_id(13), seeds=1, leechers=4, num_pieces=8,
            duration=30.0, arrival_rate=0.0, free_riders=2, local_join_time=5.0,
        )
        harness = build_experiment(scenario, seed=5)
        harness.swarm.run(25.0)  # let every scheduled arrival land
        riders = [
            peer
            for peer in harness.swarm.peers.values()
            if peer.config.upload_capacity == 0.0
        ]
        assert len(riders) == 2

    def test_determinism(self):
        scenario = scaled_copy(
            scenario_by_id(13), seeds=1, leechers=5, num_pieces=8,
            duration=120.0, arrival_rate=0.0, local_join_time=5.0,
        )
        def run():
            harness = build_experiment(scenario, seed=7)
            harness.run()
            return sorted(harness.swarm.result.completions.items())
        assert run() == run()
